package wal

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
	"time"

	"kwsc/internal/dataset"
	"kwsc/internal/geom"
)

// testObj builds a deterministic object from a seed.
func testObj(seed int) dataset.Object {
	r := rand.New(rand.NewSource(int64(seed)))
	// Docs hold 2-4 *distinct* keywords so every object is reachable by at
	// least one 2-distinct-keyword query (k=2 in these tests).
	perm := r.Perm(8)
	doc := make([]dataset.Keyword, 2+r.Intn(3))
	for i := range doc {
		doc[i] = dataset.Keyword(perm[i])
	}
	return dataset.Object{
		Point: geom.Point{r.Float64(), r.Float64()},
		Doc:   doc,
	}
}

func mustOpen(t *testing.T, dir string, opts ...Option) *Durable {
	t.Helper()
	d, err := Open(dir, 2, 2, opts...)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return d
}

func mustInsert(t *testing.T, d *Durable, seed int) int64 {
	t.Helper()
	h, err := d.Insert(testObj(seed))
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	return h
}

// liveHandles returns every live handle via an everything query.
func liveHandles(t *testing.T, d *Durable) []int64 {
	t.Helper()
	all := geom.NewRect([]float64{-1, -1}, []float64{2, 2})
	var out []int64
	seen := map[int64]bool{}
	// Query per keyword pair cannot enumerate docs missing a pair, so walk
	// the snapshot through Len/Collect over the full vocabulary instead.
	for a := 0; a < 8; a++ {
		for b := a + 1; b < 8; b++ {
			hs, _, err := d.Collect(all, []dataset.Keyword{dataset.Keyword(a), dataset.Keyword(b)})
			if err != nil {
				t.Fatalf("Collect: %v", err)
			}
			for _, h := range hs {
				if !seen[h] {
					seen[h] = true
					out = append(out, h)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestRecordRoundTrip(t *testing.T) {
	obj := dataset.Object{Point: geom.Point{0.25, -3}, Doc: []dataset.Keyword{1, 4, 9}}
	for _, r := range []record{
		{seq: 1, op: opInsert, handle: 0, obj: obj},
		{seq: 77, op: opInsert, handle: 1 << 40, obj: obj},
		{seq: 78, op: opDelete, handle: 3},
	} {
		buf := appendRecord(nil, &r)
		got, err := decodeRecord(buf)
		if err != nil {
			t.Fatalf("decodeRecord(%+v): %v", r, err)
		}
		if got.seq != r.seq || got.op != r.op || got.handle != r.handle {
			t.Fatalf("round trip: got %+v want %+v", got, r)
		}
		if r.op == opInsert {
			if !reflect.DeepEqual(got.obj, r.obj) {
				t.Fatalf("object round trip: got %+v want %+v", got.obj, r.obj)
			}
		}
	}
}

func TestDecodeRecordRejects(t *testing.T) {
	obj := dataset.Object{Point: geom.Point{1, 2}, Doc: []dataset.Keyword{2, 5}}
	good := appendRecord(nil, &record{seq: 9, op: opInsert, handle: 4, obj: obj})
	cases := map[string][]byte{
		"empty":          {},
		"unknown op":     append(binary.AppendUvarint(nil, 5), 99),
		"trailing bytes": append(append([]byte{}, good...), 0),
		"truncated":      good[:len(good)-1],
	}
	for name, payload := range cases {
		if _, err := decodeRecord(payload); err == nil {
			t.Errorf("%s: decodeRecord accepted invalid payload", name)
		}
	}
	// Non-increasing keywords (delta 0 after the first) must be rejected:
	// replay depends on canonical sorted/deduped documents.
	dup := dataset.Object{Point: geom.Point{1, 2}, Doc: []dataset.Keyword{5, 5}}
	bad := appendRecord(nil, &record{seq: 1, op: opInsert, handle: 0, obj: dup})
	if _, err := decodeRecord(bad); !errors.Is(err, ErrCorrupt) {
		t.Errorf("duplicate keyword: got %v, want ErrCorrupt", err)
	}
}

func TestScanFrame(t *testing.T) {
	p1, p2 := []byte("hello"), []byte("world!!")
	var data []byte
	for _, p := range [][]byte{p1, p2} {
		data = binary.LittleEndian.AppendUint32(data, uint32(len(p)))
		data = binary.LittleEndian.AppendUint32(data, crc32.Checksum(p, castagnoli))
		data = append(data, p...)
	}
	got1, next, err := scanFrame(data, 0)
	if err != nil || string(got1) != "hello" {
		t.Fatalf("frame 1: %q %v", got1, err)
	}
	got2, next, err := scanFrame(data, next)
	if err != nil || string(got2) != "world!!" {
		t.Fatalf("frame 2: %q %v", got2, err)
	}
	// Clean EOF at exact end.
	if _, _, err := scanFrame(data, next); err != io.EOF {
		t.Fatalf("at end: got %v, want io.EOF", err)
	}
	// Torn header.
	if _, _, err := scanFrame(data[:3], 0); !errors.Is(err, errTorn) {
		t.Fatalf("partial header: got %v want errTorn", err)
	}
	// Torn body.
	if _, _, err := scanFrame(data[:frameHeader+2], 0); !errors.Is(err, errTorn) {
		t.Fatalf("partial body: got %v want errTorn", err)
	}
	// Flipped payload bit.
	bad := append([]byte{}, data...)
	bad[frameHeader] ^= 0x40
	if _, _, err := scanFrame(bad, 0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("flipped bit: got %v want ErrCorrupt", err)
	}
	// Implausible length.
	huge := binary.LittleEndian.AppendUint32(nil, 1<<30)
	huge = append(huge, 0, 0, 0, 0)
	if _, _, err := scanFrame(huge, 0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("huge length: got %v want ErrCorrupt", err)
	}
}

func TestOpenInsertDeleteReopen(t *testing.T) {
	dir := t.TempDir()
	d := mustOpen(t, dir)
	var handles []int64
	for i := 0; i < 20; i++ {
		handles = append(handles, mustInsert(t, d, i))
	}
	for _, h := range handles[:5] {
		ok, err := d.Delete(h)
		if err != nil || !ok {
			t.Fatalf("Delete(%d): %v %v", h, ok, err)
		}
	}
	if ok, err := d.Delete(99999); err != nil || ok {
		t.Fatalf("Delete(unknown): ok=%v err=%v (want false, nil)", ok, err)
	}
	wantLive := liveHandles(t, d)
	wantLen, wantSeq := d.Len(), d.LastSeq()
	if wantSeq != 25 {
		t.Fatalf("LastSeq = %d, want 25 (20 inserts + 5 deletes)", wantSeq)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := d.Insert(testObj(0)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Insert after Close: %v, want ErrClosed", err)
	}

	d2 := mustOpen(t, dir)
	defer d2.Close()
	if d2.Len() != wantLen {
		t.Fatalf("recovered Len = %d, want %d", d2.Len(), wantLen)
	}
	if d2.LastSeq() != wantSeq {
		t.Fatalf("recovered LastSeq = %d, want %d", d2.LastSeq(), wantSeq)
	}
	if got := liveHandles(t, d2); !reflect.DeepEqual(got, wantLive) {
		t.Fatalf("recovered handles %v, want %v", got, wantLive)
	}
	// Handles keep incrementing across recovery: no reuse.
	if h := mustInsert(t, d2, 100); h != 20 {
		t.Fatalf("post-recovery handle = %d, want 20", h)
	}
}

func TestTornTailTruncated(t *testing.T) {
	for _, cut := range []int{1, 4, 7, 9} { // inside header and inside body
		dir := t.TempDir()
		d := mustOpen(t, dir)
		for i := 0; i < 8; i++ {
			mustInsert(t, d, i)
		}
		d.Close()
		seg := segmentPath(dir, 1)
		// Append a frame prefix: a torn write of a 9th op.
		full := appendRecord(nil, &record{seq: 9, op: opInsert, handle: 8, obj: testObj(8)})
		var frame []byte
		frame = binary.LittleEndian.AppendUint32(frame, uint32(len(full)))
		frame = binary.LittleEndian.AppendUint32(frame, crc32.Checksum(full, castagnoli))
		frame = append(frame, full...)
		st, _ := os.Stat(seg)
		f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
		if err != nil {
			t.Fatal(err)
		}
		f.Write(frame[:cut])
		f.Close()

		d2 := mustOpen(t, dir)
		if d2.LastSeq() != 8 {
			t.Fatalf("cut=%d: LastSeq = %d, want 8 (torn tail dropped)", cut, d2.LastSeq())
		}
		if d2.Len() != 8 {
			t.Fatalf("cut=%d: Len = %d, want 8", cut, d2.Len())
		}
		if st2, _ := os.Stat(seg); st2.Size() != st.Size() {
			t.Fatalf("cut=%d: segment size %d after recovery, want truncated to %d", cut, st2.Size(), st.Size())
		}
		// The log stays appendable after truncation.
		if h := mustInsert(t, d2, 8); h != 8 {
			t.Fatalf("cut=%d: handle after truncation = %d, want 8", cut, h)
		}
		d2.Close()
	}
}

func TestMidLogCorruptionRefused(t *testing.T) {
	dir := t.TempDir()
	d := mustOpen(t, dir)
	for i := 0; i < 10; i++ {
		mustInsert(t, d, i)
	}
	d.Close()
	seg := segmentPath(dir, 1)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a bit inside the third frame's payload: valid frames follow, so
	// recovery must refuse rather than truncate acknowledged history.
	off := 0
	for i := 0; i < 2; i++ {
		_, next, err := scanFrame(data, off)
		if err != nil {
			t.Fatal(err)
		}
		off = next
	}
	data[off+frameHeader+1] ^= 0x10
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, 2, 2); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open on mid-log corruption: %v, want ErrCorrupt", err)
	}
	// The damaged file must not have been truncated.
	if st, _ := os.Stat(seg); st.Size() != int64(len(data)) {
		t.Fatalf("segment truncated to %d despite mid-log corruption", st.Size())
	}
}

func TestSequenceGapRefused(t *testing.T) {
	dir := t.TempDir()
	d := mustOpen(t, dir)
	for i := 0; i < 6; i++ {
		mustInsert(t, d, i)
	}
	d.Close()
	seg := segmentPath(dir, 1)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Remove the middle frame wholesale (checksums stay valid) — a gap.
	off := 0
	var ends []int
	for {
		_, next, err := scanFrame(data, off)
		if err != nil {
			break
		}
		ends = append(ends, next)
		off = next
	}
	gapped := append(append([]byte{}, data[:ends[1]]...), data[ends[2]:]...)
	if err := os.WriteFile(seg, gapped, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, 2, 2); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open on sequence gap: %v, want ErrCorrupt", err)
	}
}

func TestCheckpointSupersedesAndPrunes(t *testing.T) {
	dir := t.TempDir()
	d := mustOpen(t, dir)
	for i := 0; i < 12; i++ {
		mustInsert(t, d, i)
	}
	d.Delete(0)
	if err := d.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	// Post-checkpoint dir: exactly one checkpoint (seq 13) and the fresh
	// active segment (start 14); the pre-checkpoint segment is pruned.
	names := dirNames(t, dir)
	want := []string{"checkpoint-000000000000000d.ckpt", "wal-000000000000000e.log"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("after checkpoint: dir = %v, want %v", names, want)
	}
	// More ops land in the new segment; recovery = checkpoint + tail replay.
	mustInsert(t, d, 20)
	d.Delete(3)
	wantLive, wantLen := liveHandles(t, d), d.Len()
	d.Close()

	d2 := mustOpen(t, dir)
	defer d2.Close()
	if d2.Len() != wantLen || !reflect.DeepEqual(liveHandles(t, d2), wantLive) {
		t.Fatalf("recovery from checkpoint+tail: Len=%d want %d, handles %v want %v",
			d2.Len(), wantLen, liveHandles(t, d2), wantLive)
	}
	if d2.LastSeq() != 15 {
		t.Fatalf("LastSeq = %d, want 15", d2.LastSeq())
	}
}

func TestCheckpointWithoutNewOps(t *testing.T) {
	dir := t.TempDir()
	d := mustOpen(t, dir)
	mustInsert(t, d, 1)
	if err := d.Checkpoint(); err != nil {
		t.Fatalf("first checkpoint: %v", err)
	}
	// No ops since: the active segment already starts at seq+1, so the
	// second checkpoint must not rotate into the same file or fail.
	if err := d.Checkpoint(); err != nil {
		t.Fatalf("idempotent checkpoint: %v", err)
	}
	mustInsert(t, d, 2)
	d.Close()
	d2 := mustOpen(t, dir)
	defer d2.Close()
	if d2.Len() != 2 || d2.LastSeq() != 2 {
		t.Fatalf("after idempotent checkpoint: Len=%d LastSeq=%d, want 2, 2", d2.Len(), d2.LastSeq())
	}
}

func TestDamagedCheckpointFallsBackToOlder(t *testing.T) {
	dir := t.TempDir()
	d := mustOpen(t, dir)
	for i := 0; i < 6; i++ {
		mustInsert(t, d, i)
	}
	if err := d.Checkpoint(); err != nil { // checkpoint A at seq 6
		t.Fatal(err)
	}
	for i := 6; i < 10; i++ {
		mustInsert(t, d, i)
	}
	// Preserve the pre-checkpoint-B state: simulate a crash where checkpoint
	// B was written but pruning had not happened yet.
	saved := map[string][]byte{}
	for _, name := range dirNames(t, dir) {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		saved[name] = b
	}
	if err := d.Checkpoint(); err != nil { // checkpoint B at seq 10, prunes A
		t.Fatal(err)
	}
	wantLive, wantLen := liveHandles(t, d), d.Len()
	d.Close()
	for name, b := range saved { // un-prune: restore A and its segments
		if err := os.WriteFile(filepath.Join(dir, name), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Damage checkpoint B. Recovery must fall back to A and replay the
	// surviving segments to the same state.
	bPath := checkpointPath(dir, 10)
	b, err := os.ReadFile(bPath)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xff
	if err := os.WriteFile(bPath, b, 0o644); err != nil {
		t.Fatal(err)
	}

	d2 := mustOpen(t, dir)
	defer d2.Close()
	if d2.Len() != wantLen || !reflect.DeepEqual(liveHandles(t, d2), wantLive) {
		t.Fatalf("fallback recovery: Len=%d want %d", d2.Len(), wantLen)
	}
	if d2.LastSeq() != 10 {
		t.Fatalf("fallback recovery LastSeq = %d, want 10", d2.LastSeq())
	}
}

func TestConfigMismatchRefused(t *testing.T) {
	dir := t.TempDir()
	d := mustOpen(t, dir)
	mustInsert(t, d, 1)
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	d.Close()
	if _, err := Open(dir, 3, 2); err == nil {
		t.Fatal("Open with wrong dim accepted a checkpoint for dim=2")
	}
	if _, err := Open(dir, 2, 4); err == nil {
		t.Fatal("Open with wrong k accepted a checkpoint for k=2")
	}
}

func TestSyncPolicies(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts []Option
	}{
		{"every-op", []Option{WithSyncPolicy(SyncEveryOp)}},
		{"interval", []Option{WithSyncInterval(5 * time.Millisecond)}},
		{"none", []Option{WithSyncPolicy(SyncNone)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			d := mustOpen(t, dir, tc.opts...)
			for i := 0; i < 10; i++ {
				mustInsert(t, d, i)
			}
			if err := d.Sync(); err != nil {
				t.Fatalf("Sync: %v", err)
			}
			if err := d.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			d2 := mustOpen(t, dir)
			defer d2.Close()
			if d2.Len() != 10 {
				t.Fatalf("recovered Len = %d, want 10", d2.Len())
			}
		})
	}
}

func TestAutoCheckpoint(t *testing.T) {
	dir := t.TempDir()
	d := mustOpen(t, dir, WithAutoCheckpoint(5))
	for i := 0; i < 12; i++ {
		mustInsert(t, d, i)
	}
	d.Close()
	// 12 ops with a checkpoint every 5 → last checkpoint at seq 10.
	if _, err := os.Stat(checkpointPath(dir, 10)); err != nil {
		t.Fatalf("auto-checkpoint at seq 10 missing: %v (dir: %v)", err, dirNames(t, dir))
	}
	d2 := mustOpen(t, dir)
	defer d2.Close()
	if d2.Len() != 12 || d2.LastSeq() != 12 {
		t.Fatalf("after auto-checkpoints: Len=%d LastSeq=%d, want 12, 12", d2.Len(), d2.LastSeq())
	}
}

func TestSyncPolicyString(t *testing.T) {
	for p, want := range map[SyncPolicy]string{
		SyncEveryOp: "every-op", SyncInterval: "interval", SyncNone: "none", SyncPolicy(9): "SyncPolicy(9)",
	} {
		if got := p.String(); got != want {
			t.Errorf("SyncPolicy(%d).String() = %q, want %q", int(p), got, want)
		}
	}
}

func dirNames(t *testing.T, dir string) []string {
	t.Helper()
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, de := range des {
		names = append(names, de.Name())
	}
	sort.Strings(names)
	return names
}
