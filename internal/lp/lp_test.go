package lp

import (
	"math/rand"
	"testing"
)

func box(d int, lo, hi float64) ([]float64, []float64) {
	l := make([]float64, d)
	h := make([]float64, d)
	for i := 0; i < d; i++ {
		l[i], h[i] = lo, hi
	}
	return l, h
}

func TestFeasibleNoConstraints(t *testing.T) {
	lo, hi := box(3, 0, 1)
	if !FeasibleInBox(nil, lo, hi) {
		t.Fatal("empty system inside a box must be feasible")
	}
}

func TestFeasibleCenterFastPath(t *testing.T) {
	lo, hi := box(2, 0, 1)
	cons := []Constraint{{Coef: []float64{1, 1}, Bound: 10}}
	if !FeasibleInBox(cons, lo, hi) {
		t.Fatal("slack constraint must be feasible")
	}
}

func TestInfeasibleSingleConstraint(t *testing.T) {
	lo, hi := box(2, 0, 1)
	// x + y <= -1 cannot hold in [0,1]^2.
	cons := []Constraint{{Coef: []float64{1, 1}, Bound: -1}}
	if FeasibleInBox(cons, lo, hi) {
		t.Fatal("unsatisfiable constraint reported feasible")
	}
}

func TestFeasibleOnlyAtCorner(t *testing.T) {
	lo, hi := box(2, 0, 1)
	// x + y >= 1.9 intersects [0,1]^2 only near the (1,1) corner.
	cons := []Constraint{{Coef: []float64{-1, -1}, Bound: -1.9}}
	if !FeasibleInBox(cons, lo, hi) {
		t.Fatal("corner region reported infeasible")
	}
	// Push past the corner: infeasible.
	cons[0].Bound = -2.1
	if FeasibleInBox(cons, lo, hi) {
		t.Fatal("region beyond the corner reported feasible")
	}
}

func TestContradictoryPair(t *testing.T) {
	lo, hi := box(2, -10, 10)
	cons := []Constraint{
		{Coef: []float64{1, 0}, Bound: 0},   // x <= 0
		{Coef: []float64{-1, 0}, Bound: -1}, // x >= 1
	}
	if FeasibleInBox(cons, lo, hi) {
		t.Fatal("contradictory constraints reported feasible")
	}
}

func TestSinglePointFeasible(t *testing.T) {
	lo, hi := box(2, 0, 1)
	// x <= 0.5 and x >= 0.5 and y <= 0.5 and y >= 0.5: the single point
	// (0.5, 0.5).
	cons := []Constraint{
		{Coef: []float64{1, 0}, Bound: 0.5},
		{Coef: []float64{-1, 0}, Bound: -0.5},
		{Coef: []float64{0, 1}, Bound: 0.5},
		{Coef: []float64{0, -1}, Bound: -0.5},
	}
	if !FeasibleInBox(cons, lo, hi) {
		t.Fatal("single-point region reported infeasible")
	}
}

func TestThinSlabThroughBox(t *testing.T) {
	lo, hi := box(3, 0, 1)
	// A diagonal slab no box corner is inside.
	cons := []Constraint{
		{Coef: []float64{1, 1, 1}, Bound: 1.55},
		{Coef: []float64{-1, -1, -1}, Bound: -1.45},
	}
	if !FeasibleInBox(cons, lo, hi) {
		t.Fatal("diagonal slab through the box reported infeasible")
	}
}

func TestEval(t *testing.T) {
	c := Constraint{Coef: []float64{2, -1}, Bound: 0}
	if v := c.Eval([]float64{3, 4}); v != 2 {
		t.Fatalf("Eval = %v, want 2", v)
	}
}

// Property: the decision agrees with dense rejection sampling. Sampling can
// only prove feasibility, so mismatches are one-sided: if sampling finds a
// feasible point the solver must agree.
func TestFeasibilityVsSamplingProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	agreeFeasible := 0
	for trial := 0; trial < 400; trial++ {
		d := 2 + rng.Intn(3)
		lo, hi := box(d, 0, 1)
		s := 1 + rng.Intn(4)
		cons := make([]Constraint, s)
		for i := range cons {
			coef := make([]float64, d)
			for j := range coef {
				coef[j] = rng.NormFloat64()
			}
			cons[i] = Constraint{Coef: coef, Bound: rng.NormFloat64() * 0.5}
		}
		got := FeasibleInBox(cons, lo, hi)
		found := false
	sample:
		for i := 0; i < 2000; i++ {
			p := make([]float64, d)
			for j := range p {
				p[j] = rng.Float64()
			}
			for _, c := range cons {
				if c.Eval(p) > c.Bound {
					continue sample
				}
			}
			found = true
			break
		}
		if found && !got {
			t.Fatalf("trial %d: sampling found a feasible point but solver says infeasible", trial)
		}
		if found && got {
			agreeFeasible++
		}
	}
	if agreeFeasible == 0 {
		t.Fatal("property test never exercised a feasible system; workload broken")
	}
}

func TestSolveSquareIdentity(t *testing.T) {
	all := []Constraint{
		{Coef: []float64{1, 0}, Bound: 3},
		{Coef: []float64{0, 1}, Bound: 4},
	}
	out := make([]float64, 2)
	if !solveSquare(all, []int{0, 1}, out) {
		t.Fatal("identity system must solve")
	}
	if out[0] != 3 || out[1] != 4 {
		t.Fatalf("solution = %v, want [3 4]", out)
	}
}

func TestSolveSquareSingular(t *testing.T) {
	all := []Constraint{
		{Coef: []float64{1, 1}, Bound: 1},
		{Coef: []float64{2, 2}, Bound: 2},
	}
	out := make([]float64, 2)
	if solveSquare(all, []int{0, 1}, out) {
		t.Fatal("singular system must be rejected")
	}
}
