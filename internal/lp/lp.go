// Package lp decides feasibility of small linear-inequality systems in fixed
// (constant) dimension. The keyword-search indexes use it for one purpose:
// deciding whether an axis-aligned box cell intersects a convex polyhedron
// query (the cell-vs-query tests of the framework's Step 3 when the
// underlying space-partitioning index has box cells in dimension d >= 3).
//
// Because every system we test is bounded (the box cell contributes 2d bound
// constraints) and tiny (a query polyhedron has s = O(1) facets), the solver
// enumerates candidate vertices: for every d-subset of constraint boundaries
// it solves the d x d linear system and checks the solution against all
// constraints. This is exact up to floating-point tolerance and runs in
// O(C(m,d) * d^3) time for m constraints — a constant for the fixed m, d the
// indexes use. Determinism keeps benchmark runs reproducible.
package lp

import "math"

// Eps is the relative tolerance for constraint satisfaction. A violation
// below Eps can only misclassify a barely-disjoint cell as "crossing", which
// costs the indexes performance, never correctness.
const Eps = 1e-9

// Constraint is a linear inequality Coef . x <= Bound.
type Constraint struct {
	Coef  []float64
	Bound float64
}

// Eval returns Coef . x.
func (c Constraint) Eval(x []float64) float64 {
	var s float64
	for i, v := range c.Coef {
		s += v * x[i]
	}
	return s
}

func (c Constraint) scale() float64 {
	m := 1.0
	for _, v := range c.Coef {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	if b := math.Abs(c.Bound); b > m {
		m = b
	}
	return m
}

// satisfiedBy reports whether x satisfies c within tolerance.
func (c Constraint) satisfiedBy(x []float64) bool {
	return c.Eval(x) <= c.Bound+Eps*c.scale()*vecScale(x)
}

func vecScale(x []float64) float64 {
	m := 1.0
	for _, v := range x {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}

// FeasibleInBox reports whether the system {c.Coef . x <= c.Bound for all c}
// has a solution inside the box [lo, hi]. The box must be finite and
// non-empty; it bounds the feasible region, so feasibility is witnessed
// either by the box center, by a vertex of the arrangement of constraint
// boundaries and box facets, or not at all.
func FeasibleInBox(cons []Constraint, lo, hi []float64) bool {
	d := len(lo)
	// Fast path: box center already feasible.
	center := make([]float64, d)
	for i := range lo {
		center[i] = (lo[i] + hi[i]) / 2
	}
	if allSatisfied(cons, center) {
		return true
	}
	// Gather every constraint boundary: query facets plus box facets.
	all := make([]Constraint, 0, len(cons)+2*d)
	all = append(all, cons...)
	for i := 0; i < d; i++ {
		cHi := make([]float64, d)
		cHi[i] = 1
		all = append(all, Constraint{Coef: cHi, Bound: hi[i]})
		cLo := make([]float64, d)
		cLo[i] = -1
		all = append(all, Constraint{Coef: cLo, Bound: -lo[i]})
	}
	inBox := func(x []float64) bool {
		for i := range lo {
			span := hi[i] - lo[i]
			if span < 1 {
				span = 1
			}
			if x[i] < lo[i]-Eps*span || x[i] > hi[i]+Eps*span {
				return false
			}
		}
		return true
	}
	// If the feasible region is non-empty, it is a bounded polytope whose
	// vertices each lie on d constraint boundaries. Enumerate d-subsets.
	idx := make([]int, d)
	x := make([]float64, d)
	var rec func(start, depth int) bool
	rec = func(start, depth int) bool {
		if depth == d {
			if !solveSquare(all, idx, x) {
				return false
			}
			return inBox(x) && allSatisfied(cons, x)
		}
		for i := start; i <= len(all)-(d-depth); i++ {
			idx[depth] = i
			if rec(i+1, depth+1) {
				return true
			}
		}
		return false
	}
	return rec(0, 0)
}

func allSatisfied(cons []Constraint, x []float64) bool {
	for _, c := range cons {
		if !c.satisfiedBy(x) {
			return false
		}
	}
	return true
}

// solveSquare solves the d x d system formed by making the constraints at
// positions idx tight (Coef . x = Bound), via Gaussian elimination with
// partial pivoting. It returns false for (near-)singular systems.
func solveSquare(all []Constraint, idx []int, out []float64) bool {
	d := len(idx)
	// Build augmented matrix.
	a := make([][]float64, d)
	for r, ci := range idx {
		row := make([]float64, d+1)
		copy(row, all[ci].Coef)
		row[d] = all[ci].Bound
		a[r] = row
	}
	for col := 0; col < d; col++ {
		// Partial pivot.
		p, pv := -1, Eps
		for r := col; r < d; r++ {
			if v := math.Abs(a[r][col]); v > pv {
				p, pv = r, v
			}
		}
		if p < 0 {
			return false
		}
		a[col], a[p] = a[p], a[col]
		for r := col + 1; r < d; r++ {
			f := a[r][col] / a[col][col]
			if f == 0 {
				continue
			}
			for c := col; c <= d; c++ {
				a[r][c] -= f * a[col][c]
			}
		}
	}
	for r := d - 1; r >= 0; r-- {
		s := a[r][d]
		for c := r + 1; c < d; c++ {
			s -= a[r][c] * out[c]
		}
		out[r] = s / a[r][r]
	}
	for _, v := range out {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}
