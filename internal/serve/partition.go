package serve

import (
	"fmt"
	"math"
	"sort"

	"kwsc"
)

// PartitionMode selects how objects map to shards.
type PartitionMode int

const (
	// PartitionHash routes each object by a content hash of its point and
	// document: uniform occupancy under any input distribution, no routing
	// state, but range queries touch every shard.
	PartitionHash PartitionMode = iota
	// PartitionRange routes each object by its dimension-0 coordinate
	// against precomputed rank-space cut points: narrow dimension-0 query
	// ranges touch few shards, at the cost of occupancy skew when the
	// write distribution drifts from the cuts.
	PartitionRange
)

// ParsePartitionMode parses "hash" or "range".
func ParsePartitionMode(s string) (PartitionMode, error) {
	switch s {
	case "hash":
		return PartitionHash, nil
	case "range":
		return PartitionRange, nil
	}
	return 0, fmt.Errorf("serve: unknown partition mode %q (want hash or range)", s)
}

func (m PartitionMode) String() string {
	if m == PartitionRange {
		return "range"
	}
	return "hash"
}

// partitioner routes objects to shards. It is immutable after construction
// and safe for concurrent use.
type partitioner struct {
	mode PartitionMode
	n    int
	// cuts are the range-mode boundaries: shard i owns coordinates in
	// [cuts[i-1], cuts[i]) with implicit cuts[-1] = -Inf and
	// cuts[n-1] = +Inf. len(cuts) == n-1.
	cuts []float64
}

// route returns the owning shard for an object. Routing is a pure function
// of the object's content (FNV-1a, no process-local seed), so a durable
// deployment routes an object to the same shard after every restart.
func (p *partitioner) route(obj kwsc.Object) int {
	if p.n == 1 {
		return 0
	}
	if p.mode == PartitionRange {
		x := obj.Point[0]
		// Shard = number of cuts <= x: shard i owns [cuts[i-1], cuts[i]).
		return sort.Search(len(p.cuts), func(i int) bool { return p.cuts[i] > x })
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, x := range obj.Point {
		v := math.Float64bits(x)
		for s := 0; s < 64; s += 8 {
			h = (h ^ uint64(byte(v>>s))) * prime64
		}
	}
	for _, w := range obj.Doc {
		for s := 0; s < 32; s += 8 {
			h = (h ^ uint64(byte(w>>s))) * prime64
		}
	}
	return int(h % uint64(p.n))
}

// newPartitioner builds the router. Range mode derives its cuts from the
// dimension-0 quantiles of the seed objects; with no seed data the cuts
// split [0, 1] uniformly (matching the synthetic workload generators), and
// later writes still route consistently — cuts are fixed for the lifetime
// of the deployment.
func newPartitioner(mode PartitionMode, n int, seed []kwsc.Object) *partitioner {
	p := &partitioner{mode: mode, n: n}
	if mode != PartitionRange || n == 1 {
		return p
	}
	p.cuts = make([]float64, n-1)
	if len(seed) == 0 {
		for i := range p.cuts {
			p.cuts[i] = float64(i+1) / float64(n)
		}
		return p
	}
	xs := make([]float64, len(seed))
	for i, o := range seed {
		xs[i] = o.Point[0]
	}
	sort.Float64s(xs)
	for i := range p.cuts {
		// The upper-rank quantile: shard i receives ranks [i*len/n, (i+1)*len/n).
		p.cuts[i] = xs[(i+1)*len(xs)/n]
	}
	return p
}

// split groups the seed objects by owning shard, remembering each object's
// global id (its position in the input). Groups may be empty — a static
// shard with no objects serves empty results.
func (p *partitioner) split(objs []kwsc.Object) (groups [][]kwsc.Object, globals [][]int64) {
	groups = make([][]kwsc.Object, p.n)
	globals = make([][]int64, p.n)
	for i, o := range objs {
		s := p.route(o)
		groups[s] = append(groups[s], o)
		globals[s] = append(globals[s], int64(i))
	}
	return groups, globals
}

// Dynamic-corpus handles encode the owning shard so deletes route without
// any directory: global = local*n + shard.

func globalHandle(local int64, shard, n int) int64 { return local*int64(n) + int64(shard) }

func splitHandle(global int64, n int) (local int64, shard int) {
	return global / int64(n), int(global % int64(n))
}
