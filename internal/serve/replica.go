package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"kwsc"
	"kwsc/internal/core"
	"kwsc/internal/obs"
	"kwsc/internal/repl"
)

// Replica-aware serving: each dynamic shard becomes a replica group — the
// local writer plus one read leg per follower process (a kwscd started with
// -follow replaying this primary's WAL). Bounded-staleness reads fan out to
// healthy, fresh-enough replicas (round-robin), fail over past dead or
// lagging ones, optionally hedge after a latency threshold, and degrade to
// the freshest stale answer (surfaced in the response) only when nothing
// admissible survives. See DESIGN.md §16.

// FPWriterDown simulates an unavailable writer leg (tests/operations): the
// armed action may panic, which the group translates into a failed leg so
// reads fail over to replicas instead of crashing the query.
const FPWriterDown = "serve/writer-down"

var (
	failovers   = obs.Default().Counter("kwscd_failovers_total")
	hedgedReads = obs.Default().Counter("kwscd_hedged_reads_total")
	staleServed = obs.Default().Counter("kwscd_stale_served_total")
)

// serverMeta is the JSON body of GET /repl/v1/meta: what a follower or
// replica-aware peer needs to mirror this deployment.
type serverMeta struct {
	Mode      string `json:"mode"`
	Partition string `json:"partition"`
	Shards    int    `json:"shards"`
	Dim       int    `json:"dim"`
	K         int    `json:"k"`
}

// legReply is the JSON body of POST /repl/v1/shard/{i}/query: one shard's
// scatter leg executed on a single process, global ids and all.
type legReply struct {
	IDs         []int64 `json:"ids"`
	Ops         int64   `json:"ops"`
	Seq         uint64  `json:"seq"`
	Truncated   bool    `json:"truncated,omitempty"`
	FellBack    bool    `json:"fell_back,omitempty"`
	Outcome     string  `json:"outcome"`
	StalenessMs int64   `json:"staleness_ms"`
	Stale       bool    `json:"stale,omitempty"`
}

// healthReply is the JSON body of GET /repl/v1/shard/{i}/health.
type healthReply struct {
	AppliedSeq  uint64 `json:"applied_seq"`
	PrimarySeq  uint64 `json:"primary_seq"`
	StalenessMs int64  `json:"staleness_ms"`
	LastErr     string `json:"last_err,omitempty"`
}

// errFromOutcome maps a remote leg's outcome classification back onto the
// typed error vocabulary so gather treats remote and local legs identically.
func errFromOutcome(outcome string) error {
	switch outcome {
	case "", "ok":
		return nil
	case "deadline":
		return kwsc.ErrDeadline
	case "budget":
		return kwsc.ErrBudget
	case "canceled":
		return kwsc.ErrCanceled
	default:
		return fmt.Errorf("serve: remote leg outcome %q", outcome)
	}
}

// remoteLeg is one follower's view of one shard, probed for liveness and lag
// in the background. All health fields are atomics: the query path only
// reads them.
type remoteLeg struct {
	name    string // "replica-N"
	baseURL string // .../repl/v1/shard/%03d
	client  *http.Client

	lastOK      atomic.Int64 // unixnano of the last successful probe
	appliedSeq  atomic.Uint64
	stalenessMs atomic.Int64

	liveness time.Duration // probe age beyond which the leg counts as down
}

func (l *remoteLeg) alive() bool {
	t := l.lastOK.Load()
	return t != 0 && time.Since(time.Unix(0, t)) <= l.liveness
}

// probe refreshes the leg's health from its /health endpoint.
func (l *remoteLeg) probe() {
	resp, err := l.client.Get(l.baseURL + "/health")
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return
	}
	var h healthReply
	if json.NewDecoder(io.LimitReader(resp.Body, maxBodyBytes)).Decode(&h) != nil {
		return
	}
	l.appliedSeq.Store(h.AppliedSeq)
	l.stalenessMs.Store(h.StalenessMs)
	l.lastOK.Store(time.Now().UnixNano())
}

// query executes the leg remotely, forwarding the request bounded by the
// caller's remaining deadline.
func (l *remoteLeg) query(req *kwsc.QueryRequest, opts kwsc.QueryOpts) legResult {
	fwd := *req
	fwd.Limit = 0 // the gather applies the limit to the merged sequence
	if !opts.Policy.Deadline.IsZero() {
		remaining := time.Until(opts.Policy.Deadline)
		if remaining <= 0 {
			return legResult{err: kwsc.ErrDeadline, replica: l.name}
		}
		fwd.TimeoutMs = int64(remaining / time.Millisecond)
		if fwd.TimeoutMs == 0 {
			fwd.TimeoutMs = 1
		}
	}
	body, err := json.Marshal(&fwd)
	if err != nil {
		return legResult{err: err, replica: l.name}
	}
	resp, err := l.client.Post(l.baseURL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		return legResult{err: fmt.Errorf("serve: replica leg: %w", err), replica: l.name}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return legResult{err: fmt.Errorf("serve: replica leg status %d: %s", resp.StatusCode, b), replica: l.name}
	}
	var rep legReply
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxBodyBytes)).Decode(&rep); err != nil {
		return legResult{err: fmt.Errorf("serve: replica leg decode: %w", err), replica: l.name}
	}
	st := kwsc.QueryStats{Ops: rep.Ops, Truncated: rep.Truncated, Fallback: rep.FellBack}
	return legResult{
		ids: rep.IDs, st: st, seq: rep.Seq, err: errFromOutcome(rep.Outcome),
		replica: l.name, stalenessMs: rep.StalenessMs, stale: rep.Stale,
	}
}

// replicaGroup makes one shard fault-tolerant: reads fan out across the
// writer and its follower legs, writes go to the writer alone.
type replicaGroup struct {
	id         int
	writer     shard
	legs       []*remoteLeg
	rr         atomic.Uint32
	hedgeAfter time.Duration

	stopProbe chan struct{}
	probeWG   sync.WaitGroup
}

func newReplicaGroup(id int, writer shard, legs []*remoteLeg, hedgeAfter, probeEvery time.Duration) *replicaGroup {
	g := &replicaGroup{
		id: id, writer: writer, legs: legs,
		hedgeAfter: hedgeAfter, stopProbe: make(chan struct{}),
	}
	for _, l := range legs {
		g.probeWG.Add(1)
		go func(l *remoteLeg) {
			defer g.probeWG.Done()
			l.probe()
			t := time.NewTicker(probeEvery)
			defer t.Stop()
			for {
				select {
				case <-g.stopProbe:
					return
				case <-t.C:
					l.probe()
				}
			}
		}(l)
	}
	return g
}

// writerLeg runs the local authoritative leg, translating a writer-down
// failpoint panic into a failed leg so the group can fail over.
func (g *replicaGroup) writerLeg(req *kwsc.QueryRequest, q *kwsc.Rect, exact kwsc.Region, ws []kwsc.Keyword, opts kwsc.QueryOpts, staleness time.Duration) (res legResult) {
	defer func() {
		if r := recover(); r != nil {
			res = legResult{err: fmt.Errorf("serve: writer leg down: %v", r), replica: "writer"}
		}
	}()
	core.Failpoint(FPWriterDown)
	res = g.writer.collect(req, q, exact, ws, opts, staleness)
	res.replica = "writer"
	return res
}

// legFailed reports whether a leg result must trigger failover: transport or
// remote failure — NOT a typed policy stop, whose prefix is a valid answer.
func legFailed(res legResult) bool {
	if res.err == nil {
		return false
	}
	return !errors.Is(res.err, kwsc.ErrDeadline) &&
		!errors.Is(res.err, kwsc.ErrBudget) &&
		!errors.Is(res.err, kwsc.ErrCanceled)
}

// collect answers one scatter leg with failover and optional hedging.
//
// A request with no staleness bound needs the acked-fresh writer; everything
// else prefers replicas: admissible ones (alive, within the bound) in
// round-robin order, then the writer, and — only if every admissible leg
// failed — the freshest alive replica regardless of lag, with the answer
// flagged stale.
func (g *replicaGroup) collect(req *kwsc.QueryRequest, q *kwsc.Rect, exact kwsc.Region, ws []kwsc.Keyword, opts kwsc.QueryOpts, staleness time.Duration) legResult {
	type candidate struct {
		run   func() legResult
		stale bool // serving it exceeds the requested bound
	}
	var cands []candidate
	if staleness > 0 && len(g.legs) > 0 {
		start := int(g.rr.Add(1)) - 1
		var lagged *remoteLeg
		var laggedStaleness int64
		for i := range g.legs {
			l := g.legs[(start+i)%len(g.legs)]
			if !l.alive() {
				failovers.Inc()
				continue
			}
			if s := l.stalenessMs.Load(); s < 0 || time.Duration(s)*time.Millisecond > staleness {
				// Alive but beyond the bound: remember the freshest as the
				// degradation fallback.
				if lagged == nil || (s >= 0 && s < laggedStaleness) {
					lagged, laggedStaleness = l, s
				}
				continue
			}
			cands = append(cands, candidate{run: func() legResult { return l.query(req, opts) }})
		}
		cands = append(cands, candidate{run: func() legResult {
			return g.writerLeg(req, q, exact, ws, opts, staleness)
		}})
		if lagged != nil {
			cands = append(cands, candidate{
				run:   func() legResult { return lagged.query(req, opts) },
				stale: true,
			})
		}
	} else {
		cands = append(cands, candidate{run: func() legResult {
			return g.writerLeg(req, q, exact, ws, opts, staleness)
		}})
	}

	results := make(chan legResult, len(cands))
	launched := 0
	launch := func() {
		c := cands[launched]
		launched++
		go func() {
			res := c.run()
			if c.stale && !legFailed(res) {
				res.stale = true
				staleServed.Inc()
			}
			results <- res
		}()
	}
	launch()
	var lastFailed legResult
	inFlight := 1
	for {
		var hedge <-chan time.Time
		if g.hedgeAfter > 0 && launched < len(cands) {
			t := time.NewTimer(g.hedgeAfter)
			hedge = t.C
			defer t.Stop()
		}
		select {
		case res := <-results:
			inFlight--
			if !legFailed(res) {
				return res
			}
			failovers.Inc()
			lastFailed = res
			if launched < len(cands) {
				launch()
				inFlight++
			} else if inFlight == 0 {
				return lastFailed // every leg failed: surface the last error
			}
		case <-hedge:
			hedgedReads.Inc()
			launch()
			inFlight++
		}
	}
}

func (g *replicaGroup) insert(obj kwsc.Object) (int64, uint64, error) { return g.writer.insert(obj) }
func (g *replicaGroup) remove(local int64) (bool, uint64, error)      { return g.writer.remove(local) }
func (g *replicaGroup) live() int                                     { return g.writer.live() }

func (g *replicaGroup) describe() map[string]any {
	d := g.writer.describe()
	reps := make([]map[string]any, len(g.legs))
	for i, l := range g.legs {
		reps[i] = map[string]any{
			"name": l.name, "alive": l.alive(),
			"applied_seq": l.appliedSeq.Load(), "staleness_ms": l.stalenessMs.Load(),
		}
	}
	d["replicas"] = reps
	return d
}

func (g *replicaGroup) close() error {
	close(g.stopProbe)
	g.probeWG.Wait()
	return g.writer.close()
}

// followerShard serves one shard of a read-only follower deployment from its
// continuously-replayed local index. Staleness is measured, not assumed: a
// request whose bound the follower cannot meet is still answered — the
// response says so.
type followerShard struct {
	id, n int
	f     *repl.Follower
	now   func() time.Time

	// Bounded-staleness snapshot cache (same contract as dynamicShard).
	mu     sync.Mutex
	snap   *kwsc.DynSnapshot
	snapAt time.Time
}

func (s *followerShard) view(staleness time.Duration) *kwsc.DynSnapshot {
	d := s.f.Durable()
	if d == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()
	if staleness > 0 && s.snap != nil && now.Sub(s.snapAt) <= staleness {
		return s.snap
	}
	snap := d.Snapshot()
	if snap != nil {
		s.snap, s.snapAt = snap, now
	}
	return snap
}

// replicationStalenessMs reports the follower's measured lag age in ms
// (-1 = never caught up).
func (s *followerShard) replicationStalenessMs() int64 {
	st := s.f.Staleness()
	if st < 0 {
		return -1
	}
	return int64(st / time.Millisecond)
}

func (s *followerShard) collect(_ *kwsc.QueryRequest, q *kwsc.Rect, exact kwsc.Region, ws []kwsc.Keyword, opts kwsc.QueryOpts, staleness time.Duration) legResult {
	snap := s.view(staleness)
	if snap == nil {
		return legResult{err: fmt.Errorf("serve: follower shard %d has no replayed state yet", s.id)}
	}
	var ids []int64
	report := func(h int64, obj *kwsc.Object) {
		if exact != nil && !exact.ContainsPoint(obj.Point) {
			return
		}
		ids = append(ids, globalHandle(h, s.id, s.n))
	}
	st, err := snap.QueryWith(q, ws, opts, report)
	slices.Sort(ids)
	res := legResult{ids: ids, st: st, seq: snap.Seq(), err: err}
	res.stalenessMs = s.replicationStalenessMs()
	// Degradation surfaced: the answer exceeds the requested bound when the
	// replication lag alone is already older than the bound.
	if staleness > 0 && (res.stalenessMs < 0 || time.Duration(res.stalenessMs)*time.Millisecond > staleness) {
		res.stale = true
		staleServed.Inc()
	}
	return res
}

func (s *followerShard) insert(kwsc.Object) (int64, uint64, error) { return 0, 0, ErrReadOnly }
func (s *followerShard) remove(int64) (bool, uint64, error)        { return false, 0, ErrReadOnly }

func (s *followerShard) live() int {
	if d := s.f.Durable(); d != nil {
		return d.Len()
	}
	return 0
}

func (s *followerShard) health() healthReply {
	return healthReply{
		AppliedSeq:  s.f.AppliedSeq(),
		PrimarySeq:  s.f.PrimarySeq(),
		StalenessMs: s.replicationStalenessMs(),
		LastErr:     s.f.LastErr(),
	}
}

func (s *followerShard) describe() map[string]any {
	h := s.health()
	return map[string]any{
		"type": "follower", "live": s.live(), "applied_seq": h.AppliedSeq,
		"primary_seq": h.PrimarySeq, "staleness_ms": h.StalenessMs,
		"bootstraps": s.f.Bootstraps(),
	}
}

func (s *followerShard) close() error { return s.f.Close() }

// healther lets the health endpoint ask a shard for replication state;
// non-replicating shards synthesize an always-fresh reply.
type healther interface{ health() healthReply }

// fetchServerMeta asks a primary for its deployment shape. A transport
// failure (primary not up yet) is returned wrapped in errMetaUnreachable so
// NewFollower can retry it; malformed or non-200 replies fail immediately.
var errMetaUnreachable = errors.New("serve: primary unreachable")

func fetchServerMeta(client *http.Client, primary string) (serverMeta, error) {
	resp, err := client.Get(primary + "/repl/v1/meta")
	if err != nil {
		return serverMeta{}, fmt.Errorf("%w: fetching meta: %v", errMetaUnreachable, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return serverMeta{}, fmt.Errorf("serve: primary meta status %d", resp.StatusCode)
	}
	var m serverMeta
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxBodyBytes)).Decode(&m); err != nil {
		return serverMeta{}, fmt.Errorf("serve: decoding primary meta: %w", err)
	}
	if m.Shards <= 0 || m.Dim <= 0 || m.K <= 0 {
		return serverMeta{}, fmt.Errorf("serve: primary meta malformed: %+v", m)
	}
	return m, nil
}

// NewFollower builds a read-only replica deployment: one repl.Follower per
// primary shard, bootstrapped from the primary's checkpoints and replaying
// its WALs into local durable state under dir. The server mirrors the
// primary's shape (shard count, dim, k, partitioning) and answers queries
// with measured staleness; writes are rejected.
func NewFollower(dir, primary string, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	client := cfg.replicaClient()
	// Tolerate start ordering: a follower booted alongside (or before) its
	// primary retries an unreachable meta endpoint for a bounded window;
	// malformed replies still fail immediately.
	var meta serverMeta
	var err error
	for deadline := time.Now().Add(15 * time.Second); ; {
		meta, err = fetchServerMeta(client, primary)
		if err == nil || !errors.Is(err, errMetaUnreachable) || time.Now().After(deadline) {
			break
		}
		time.Sleep(200 * time.Millisecond)
	}
	if err != nil {
		return nil, err
	}
	cfg.Shards, cfg.Dim, cfg.K = meta.Shards, meta.Dim, meta.K
	if pm, err := ParsePartitionMode(meta.Partition); err == nil {
		cfg.Partition = pm
	}
	shards := make([]shard, cfg.Shards)
	for i := range shards {
		f, err := repl.StartFollower(repl.FollowerConfig{
			Dir:          filepath.Join(dir, fmt.Sprintf("shard-%03d", i)),
			Primary:      fmt.Sprintf("%s/repl/v1/shard/%03d", primary, i),
			Dim:          cfg.Dim,
			K:            cfg.K,
			PollInterval: cfg.FollowerPoll,
			Client:       client,
			WALOptions:   cfg.DurableOptions,
		})
		if err != nil {
			for _, sh := range shards[:i] {
				sh.close()
			}
			return nil, fmt.Errorf("serve: follower shard %d: %w", i, err)
		}
		shards[i] = &followerShard{id: i, n: cfg.Shards, f: f, now: time.Now}
	}
	part := newPartitioner(cfg.Partition, cfg.Shards, nil)
	s := newServer(cfg, false, shards, part)
	s.follower = true
	return s, nil
}
