package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"kwsc"
	"kwsc/internal/obs"
)

// maxBodyBytes bounds request bodies; oversized requests fail validation
// instead of exhausting memory.
const maxBodyBytes = 1 << 20

var (
	httpSeries  = map[string]*obs.Counter{}
	httpSeriesM sync.Mutex

	queryLatency = obs.Default().Histogram(`kwscd_query_latency_us`)
	writeLatency = obs.Default().Histogram(`kwscd_write_latency_us`)
)

func countHTTP(endpoint string, status int) {
	key := fmt.Sprintf("kwscd_http_requests_total{endpoint=%q,status=%q}",
		endpoint, strconv.Itoa(status))
	httpSeriesM.Lock()
	c, ok := httpSeries[key]
	if !ok {
		c = obs.Default().Counter(key)
		httpSeries[key] = c
	}
	httpSeriesM.Unlock()
	c.Inc()
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, code, detail string) {
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, kwsc.ErrorResponse{Code: code, Error: detail})
}

// decode strictly parses a JSON body: unknown fields and trailing garbage are
// validation errors, bodies over maxBodyBytes fail rather than allocate.
func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, kwsc.CodeInvalid, "malformed JSON body: "+err.Error())
		return false
	}
	if dec.More() {
		writeError(w, http.StatusBadRequest, kwsc.CodeInvalid, "trailing data after JSON body")
		return false
	}
	return true
}

// errStatus maps a typed service error onto an HTTP status and error code.
func errStatus(err error) (int, string) {
	switch {
	case errors.Is(err, kwsc.ErrInvalidQuery):
		return http.StatusBadRequest, kwsc.CodeInvalid
	case errors.Is(err, ErrReadOnly):
		return http.StatusBadRequest, kwsc.CodeUnsupported
	default:
		return http.StatusInternalServerError, kwsc.CodeInternal
	}
}

// Handler returns the service's HTTP surface:
//
//	POST /v1/query   — scatter-gather query (QueryRequest -> QueryResponse)
//	POST /v1/write   — routed insert/delete (WriteRequest -> WriteResponse)
//	GET  /healthz    — liveness ("ok")
//	GET  /metrics    — Prometheus text exposition of internal/obs
//	GET  /debug/stats — JSON deployment and per-shard state
//
// plus the replication surface under /repl/v1 (DESIGN.md §16):
//
//	GET  /repl/v1/meta                    — deployment shape for followers
//	GET  /repl/v1/shard/{i}/meta          — per-shard shipping state
//	GET  /repl/v1/shard/{i}/checkpoint    — checkpoint bytes (durable primaries)
//	GET  /repl/v1/shard/{i}/wal?from=N    — WAL frame tail (durable primaries)
//	POST /repl/v1/shard/{i}/query         — single-shard scatter leg
//	GET  /repl/v1/shard/{i}/health        — replication lag and liveness
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+kwsc.PathQuery, s.handleQuery)
	mux.HandleFunc("POST "+kwsc.PathWrite, s.handleWrite)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		obs.Default().Snapshot().WritePrometheus(w)
	})
	mux.HandleFunc("GET /debug/stats", s.handleStats)

	mux.HandleFunc("GET /repl/v1/meta", s.handleReplMeta)
	for i := range s.locals {
		prefix := fmt.Sprintf("/repl/v1/shard/%03d", i)
		mux.HandleFunc("POST "+prefix+"/query", s.legQueryHandler(i))
		mux.HandleFunc("GET "+prefix+"/health", s.legHealthHandler(i))
		if s.ships != nil {
			mux.Handle(prefix+"/", http.StripPrefix(prefix, s.ships[i].Handler()))
		}
	}
	return mux
}

func (s *Server) handleReplMeta(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, serverMeta{
		Mode: s.mode(), Partition: s.part.mode.String(),
		Shards: len(s.locals), Dim: s.cfg.Dim, K: s.cfg.K,
	})
}

// legQueryHandler answers a single local shard's scatter leg: no admission,
// no merge — replica groups on a peer primary call this per shard.
func (s *Server) legQueryHandler(i int) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req kwsc.QueryRequest
		if !decode(w, r, &req) {
			countHTTP("repl_query", http.StatusBadRequest)
			return
		}
		if err := req.Validate(s.cfg.Dim, s.cfg.K); err != nil {
			status, code := errStatus(err)
			countHTTP("repl_query", status)
			writeError(w, status, code, err.Error())
			return
		}
		opts := req.Opts(s.cfg.DefaultTimeout)
		if opts.Policy.Timeout > 0 && opts.Policy.Deadline.IsZero() {
			opts.Policy.Deadline = time.Now().Add(opts.Policy.Timeout)
			opts.Policy.Timeout = 0
		}
		res := s.locals[i].collect(&req, req.BoundingRect(s.cfg.Dim), req.ExactRegion(), req.Keywords,
			opts, time.Duration(req.MaxStalenessMs)*time.Millisecond)
		out := outcomeOf(res.err)
		if out == "panic" || out == "error" {
			status, code := errStatus(res.err)
			countHTTP("repl_query", status)
			writeError(w, status, code, res.err.Error())
			return
		}
		ids := res.ids
		if ids == nil {
			ids = []int64{}
		}
		countHTTP("repl_query", http.StatusOK)
		writeJSON(w, http.StatusOK, legReply{
			IDs: ids, Ops: res.st.Ops, Seq: res.seq,
			Truncated: res.st.Truncated, FellBack: res.st.Fallback,
			Outcome: out, StalenessMs: res.stalenessMs, Stale: res.stale,
		})
	}
}

func (s *Server) legHealthHandler(i int) http.HandlerFunc {
	return func(w http.ResponseWriter, _ *http.Request) {
		if h, ok := s.locals[i].(healther); ok {
			writeJSON(w, http.StatusOK, h.health())
			return
		}
		// A non-replicating local shard is its own primary: always caught up.
		var seq uint64
		if d, ok := s.locals[i].(*dynamicShard); ok {
			seq = d.seq()
		}
		writeJSON(w, http.StatusOK, healthReply{AppliedSeq: seq, PrimarySeq: seq})
	}
}

func (s *Server) mode() string {
	switch {
	case s.follower:
		return "follower"
	case s.dynamic:
		return "dynamic"
	default:
		return "static"
	}
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	status := http.StatusOK
	defer func() {
		countHTTP("query", status)
		queryLatency.Observe(time.Since(start).Microseconds())
	}()

	var req kwsc.QueryRequest
	if !decode(w, r, &req) {
		status = http.StatusBadRequest
		return
	}
	decision, release := s.adm.acquire(req.Client)
	switch decision {
	case ShedQuota:
		status = http.StatusTooManyRequests
		writeError(w, status, kwsc.CodeQuota, "client request quota exhausted")
		return
	case ShedOverload:
		status = http.StatusTooManyRequests
		writeError(w, status, kwsc.CodeOverload, "server over capacity")
		return
	}
	defer release()

	resp, err := s.Query(&req, decision == AdmitDegraded)
	if err != nil {
		var code string
		status, code = errStatus(err)
		writeError(w, status, code, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleWrite(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	status := http.StatusOK
	defer func() {
		countHTTP("write", status)
		writeLatency.Observe(time.Since(start).Microseconds())
	}()

	var req kwsc.WriteRequest
	if !decode(w, r, &req) {
		status = http.StatusBadRequest
		return
	}
	decision, release := s.adm.acquire(req.Client)
	if decision.Shed() {
		status = http.StatusTooManyRequests
		code := kwsc.CodeOverload
		if decision == ShedQuota {
			code = kwsc.CodeQuota
		}
		writeError(w, status, code, "write shed: "+decision.String())
		return
	}
	defer release()

	resp, err := s.Write(&req)
	if err != nil {
		var code string
		status, code = errStatus(err)
		writeError(w, status, code, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	shards := make([]map[string]any, len(s.shards))
	for i, sh := range s.shards {
		shards[i] = sh.describe()
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"mode":       s.mode(),
		"partition":  s.part.mode.String(),
		"shards":     len(s.shards),
		"dim":        s.cfg.Dim,
		"k":          s.cfg.K,
		"live":       s.Live(),
		"inflight":   s.adm.Inflight(),
		"uptime_sec": int64(time.Since(s.start).Seconds()),
		"shard":      shards,
	})
}
