package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"kwsc"
	"kwsc/internal/obs"
)

// maxBodyBytes bounds request bodies; oversized requests fail validation
// instead of exhausting memory.
const maxBodyBytes = 1 << 20

var (
	httpSeries  = map[string]*obs.Counter{}
	httpSeriesM sync.Mutex

	queryLatency = obs.Default().Histogram(`kwscd_query_latency_us`)
	writeLatency = obs.Default().Histogram(`kwscd_write_latency_us`)
)

func countHTTP(endpoint string, status int) {
	key := fmt.Sprintf("kwscd_http_requests_total{endpoint=%q,status=%q}",
		endpoint, strconv.Itoa(status))
	httpSeriesM.Lock()
	c, ok := httpSeries[key]
	if !ok {
		c = obs.Default().Counter(key)
		httpSeries[key] = c
	}
	httpSeriesM.Unlock()
	c.Inc()
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, code, detail string) {
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, kwsc.ErrorResponse{Code: code, Error: detail})
}

// decode strictly parses a JSON body: unknown fields and trailing garbage are
// validation errors, bodies over maxBodyBytes fail rather than allocate.
func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, kwsc.CodeInvalid, "malformed JSON body: "+err.Error())
		return false
	}
	if dec.More() {
		writeError(w, http.StatusBadRequest, kwsc.CodeInvalid, "trailing data after JSON body")
		return false
	}
	return true
}

// errStatus maps a typed service error onto an HTTP status and error code.
func errStatus(err error) (int, string) {
	switch {
	case errors.Is(err, kwsc.ErrInvalidQuery):
		return http.StatusBadRequest, kwsc.CodeInvalid
	case errors.Is(err, ErrReadOnly):
		return http.StatusBadRequest, kwsc.CodeUnsupported
	default:
		return http.StatusInternalServerError, kwsc.CodeInternal
	}
}

// Handler returns the service's HTTP surface:
//
//	POST /v1/query   — scatter-gather query (QueryRequest -> QueryResponse)
//	POST /v1/write   — routed insert/delete (WriteRequest -> WriteResponse)
//	GET  /healthz    — liveness ("ok")
//	GET  /metrics    — Prometheus text exposition of internal/obs
//	GET  /debug/stats — JSON deployment and per-shard state
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+kwsc.PathQuery, s.handleQuery)
	mux.HandleFunc("POST "+kwsc.PathWrite, s.handleWrite)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		obs.Default().Snapshot().WritePrometheus(w)
	})
	mux.HandleFunc("GET /debug/stats", s.handleStats)
	return mux
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	status := http.StatusOK
	defer func() {
		countHTTP("query", status)
		queryLatency.Observe(time.Since(start).Microseconds())
	}()

	var req kwsc.QueryRequest
	if !decode(w, r, &req) {
		status = http.StatusBadRequest
		return
	}
	decision, release := s.adm.acquire(req.Client)
	switch decision {
	case ShedQuota:
		status = http.StatusTooManyRequests
		writeError(w, status, kwsc.CodeQuota, "client request quota exhausted")
		return
	case ShedOverload:
		status = http.StatusTooManyRequests
		writeError(w, status, kwsc.CodeOverload, "server over capacity")
		return
	}
	defer release()

	resp, err := s.Query(&req, decision == AdmitDegraded)
	if err != nil {
		var code string
		status, code = errStatus(err)
		writeError(w, status, code, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleWrite(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	status := http.StatusOK
	defer func() {
		countHTTP("write", status)
		writeLatency.Observe(time.Since(start).Microseconds())
	}()

	var req kwsc.WriteRequest
	if !decode(w, r, &req) {
		status = http.StatusBadRequest
		return
	}
	decision, release := s.adm.acquire(req.Client)
	if decision.Shed() {
		status = http.StatusTooManyRequests
		code := kwsc.CodeOverload
		if decision == ShedQuota {
			code = kwsc.CodeQuota
		}
		writeError(w, status, code, "write shed: "+decision.String())
		return
	}
	defer release()

	resp, err := s.Write(&req)
	if err != nil {
		var code string
		status, code = errStatus(err)
		writeError(w, status, code, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	shards := make([]map[string]any, len(s.shards))
	for i, sh := range s.shards {
		shards[i] = sh.describe()
	}
	mode := "static"
	if s.dynamic {
		mode = "dynamic"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"mode":       mode,
		"partition":  s.part.mode.String(),
		"shards":     len(s.shards),
		"dim":        s.cfg.Dim,
		"k":          s.cfg.K,
		"live":       s.Live(),
		"inflight":   s.adm.Inflight(),
		"uptime_sec": int64(time.Since(s.start).Seconds()),
		"shard":      shards,
	})
}
