package serve

import (
	"errors"
	"fmt"
	"slices"
	"sync"
	"time"

	"kwsc"
)

// ErrReadOnly reports a write against a static corpus.
var ErrReadOnly = errors.New("serve: static corpus is read-only")

// legResult is one answered scatter leg: ascending global ids plus where and
// how fresh the answer came from. A policy stop carries the prefix-correct
// partial ids alongside the typed error.
type legResult struct {
	ids []int64
	st  kwsc.QueryStats
	seq uint64
	err error
	// replica names the group member that answered ("writer", "replica-N";
	// empty for a plain non-replicated shard).
	replica string
	// stalenessMs is the measured replication lag age of the answering
	// replica (0 for authoritative legs, -1 for a never-caught-up follower).
	stalenessMs int64
	// stale marks an answer older than the request's staleness bound —
	// served anyway as graceful degradation, surfaced to the client.
	stale bool
}

// shard is one partition of the served dataset. Implementations must be
// safe for concurrent use; collect must return ids ascending. req is the
// original wire request, carried so replica groups can forward the leg to a
// remote process; local shards answer from the parsed arguments alone.
type shard interface {
	collect(req *kwsc.QueryRequest, q *kwsc.Rect, exact kwsc.Region, ws []kwsc.Keyword, opts kwsc.QueryOpts, staleness time.Duration) legResult
	insert(obj kwsc.Object) (global int64, seq uint64, err error)
	remove(local int64) (ok bool, seq uint64, err error)
	live() int
	describe() map[string]any
	close() error
}

// staticShard serves a read-only partition through the unified Index
// surface — any rectangle-capable family works; the server builds a
// *kwsc.Degraded so overload-mode node budgets degrade to the baseline
// instead of failing.
type staticShard struct {
	ix      kwsc.Index[*kwsc.Rect] // nil for an empty partition
	ds      *kwsc.Dataset
	globals []int64 // local id -> global id
}

func (s *staticShard) collect(_ *kwsc.QueryRequest, q *kwsc.Rect, exact kwsc.Region, ws []kwsc.Keyword, opts kwsc.QueryOpts, _ time.Duration) legResult {
	if s.ix == nil {
		return legResult{}
	}
	local, st, err := s.ix.Collect(q, ws, opts)
	ids := make([]int64, 0, len(local))
	for _, id := range local {
		if exact != nil && !exact.ContainsPoint(s.ds.Point(id)) {
			continue
		}
		ids = append(ids, s.globals[id])
	}
	slices.Sort(ids)
	return legResult{ids: ids, st: st, err: err}
}

func (s *staticShard) insert(kwsc.Object) (int64, uint64, error) { return 0, 0, ErrReadOnly }
func (s *staticShard) remove(int64) (bool, uint64, error)        { return false, 0, ErrReadOnly }

func (s *staticShard) live() int {
	if s.ds == nil {
		return 0
	}
	return s.ds.Len()
}

func (s *staticShard) describe() map[string]any {
	return map[string]any{"type": "static", "live": s.live()}
}

func (s *staticShard) close() error { return nil }

// Capability probes reconciling the two dynamic backends' accessor names
// (DurableORPKW: Snapshot/LastSeq; DynamicORPKW: SnapshotNow/Seq).
type (
	snapshotter    interface{ Snapshot() *kwsc.DynSnapshot }
	snapshotNower  interface{ SnapshotNow() *kwsc.DynSnapshot }
	lastSeqer      interface{ LastSeq() uint64 }
	seqer          interface{ Seq() uint64 }
	bucketCounter  interface{ NumBuckets() int }
	tombstoneCount interface{ Tombstones() int }
	closer         interface{ Close() error }
)

// dynamicShard serves one partition from a mutable index (durable or
// in-memory) through the unified DynamicIndex surface. Global handles
// encode the shard id (see globalHandle) so deletes route statelessly.
type dynamicShard struct {
	id, n int
	ix    kwsc.DynamicIndex
	now   func() time.Time

	// Bounded-staleness read cache: one pinned MVCC snapshot, refreshed
	// when a request's staleness bound is tighter than its age.
	mu     sync.Mutex
	snap   *kwsc.DynSnapshot
	snapAt time.Time
}

func (s *dynamicShard) pin() *kwsc.DynSnapshot {
	switch v := s.ix.(type) {
	case snapshotter:
		return v.Snapshot()
	case snapshotNower:
		return v.SnapshotNow()
	}
	return nil
}

func (s *dynamicShard) seq() uint64 {
	switch v := s.ix.(type) {
	case lastSeqer:
		return v.LastSeq()
	case seqer:
		return v.Seq()
	}
	return 0
}

// view returns the read view for a query: a cached snapshot no older than
// staleness when one is allowed and available, else a fresh pin.
func (s *dynamicShard) view(staleness time.Duration) *kwsc.DynSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()
	if staleness > 0 && s.snap != nil && now.Sub(s.snapAt) <= staleness {
		return s.snap
	}
	if snap := s.pin(); snap != nil {
		s.snap, s.snapAt = snap, now
		return snap
	}
	return nil
}

func (s *dynamicShard) collect(_ *kwsc.QueryRequest, q *kwsc.Rect, exact kwsc.Region, ws []kwsc.Keyword, opts kwsc.QueryOpts, staleness time.Duration) legResult {
	var ids []int64
	report := func(h int64, obj *kwsc.Object) {
		if exact != nil && !exact.ContainsPoint(obj.Point) {
			return
		}
		ids = append(ids, globalHandle(h, s.id, s.n))
	}
	var st kwsc.QueryStats
	var err error
	var seq uint64
	if snap := s.view(staleness); snap != nil {
		st, err = snap.QueryWith(q, ws, opts, report)
		seq = snap.Seq()
	} else {
		st, err = s.ix.QueryWith(q, ws, opts, report)
		seq = s.seq()
	}
	slices.Sort(ids)
	return legResult{ids: ids, st: st, seq: seq, err: err}
}

func (s *dynamicShard) insert(obj kwsc.Object) (int64, uint64, error) {
	local, err := s.ix.Insert(obj)
	if err != nil {
		return 0, 0, err
	}
	return globalHandle(local, s.id, s.n), s.seq(), nil
}

func (s *dynamicShard) remove(local int64) (bool, uint64, error) {
	ok, err := s.ix.Delete(local)
	if err != nil {
		return false, 0, err
	}
	return ok, s.seq(), nil
}

func (s *dynamicShard) live() int { return s.ix.Len() }

func (s *dynamicShard) describe() map[string]any {
	d := map[string]any{"type": "dynamic", "live": s.live(), "seq": s.seq()}
	if v, ok := s.ix.(bucketCounter); ok {
		d["buckets"] = v.NumBuckets()
	}
	if v, ok := s.ix.(tombstoneCount); ok {
		d["tombstones"] = v.Tombstones()
	}
	return d
}

func (s *dynamicShard) close() error {
	if v, ok := s.ix.(closer); ok {
		if err := v.Close(); err != nil {
			return fmt.Errorf("serve: closing shard %d: %w", s.id, err)
		}
	}
	return nil
}
