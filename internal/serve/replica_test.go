package serve

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"slices"
	"testing"
	"time"

	"kwsc"
	"kwsc/internal/core"
	"kwsc/internal/obs"
)

// Replica-aware serving tests: a follower deployment converging on its
// primary, bounded-staleness reads routing across a replica group with
// failover and hedging, and graceful degradation to stale answers when
// nothing admissible survives — with every transition asserted through
// registry metric deltas. Run under -race via `make race`.

// waitFor polls cond until it holds or the deadline lapses.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out after %v waiting for %s", d, what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// primarySeqs reads every local shard's WAL seq on a dynamic primary.
func primarySeqs(s *Server) []uint64 {
	seqs := make([]uint64, len(s.locals))
	for i, sh := range s.locals {
		seqs[i] = sh.(*dynamicShard).seq()
	}
	return seqs
}

// followerCaughtUp reports whether every follower shard has applied at least
// the given primary seqs.
func followerCaughtUp(f *Server, seqs []uint64) bool {
	for i, sh := range f.locals {
		if sh.(*followerShard).health().AppliedSeq < seqs[i] {
			return false
		}
	}
	return true
}

// TestFollowerDeploymentConverges is the end-to-end replication path through
// the public API: a follower server bootstraps from a durable primary over
// HTTP, converges, keeps tailing new writes, answers queries identically,
// and rejects writes.
func TestFollowerDeploymentConverges(t *testing.T) {
	objs := genObjects(400, 61)
	cfg := Config{Shards: 2, Dim: 2, K: testK}
	p, err := NewDynamic(t.TempDir(), objs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	ts := httptest.NewServer(p.Handler())
	defer ts.Close()

	f, err := NewFollower(t.TempDir(), ts.URL, Config{FollowerPoll: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.NumShards() != p.NumShards() || f.Dim() != p.Dim() || f.K() != p.K() {
		t.Fatalf("follower shape (%d,%d,%d) != primary (%d,%d,%d)",
			f.NumShards(), f.Dim(), f.K(), p.NumShards(), p.Dim(), p.K())
	}
	seqs := primarySeqs(p)
	waitFor(t, 5*time.Second, "bootstrap catch-up", func() bool { return followerCaughtUp(f, seqs) })

	// The follower keeps tailing: new primary writes appear without restart.
	for i := 0; i < 50; i++ {
		if _, err := p.Write(&kwsc.WriteRequest{Op: kwsc.OpInsert,
			Point: []float64{rand.Float64(), rand.Float64()},
			Doc:   []kwsc.Keyword{1, 2, kwsc.Keyword(3 + i%5)}}); err != nil {
			t.Fatal(err)
		}
	}
	seqs = primarySeqs(p)
	waitFor(t, 5*time.Second, "tail catch-up", func() bool { return followerCaughtUp(f, seqs) })

	rng := rand.New(rand.NewSource(67))
	for q := 0; q < 25; q++ {
		req := randQuery(rng)
		want, err := p.Query(req, false)
		if err != nil {
			t.Fatal(err)
		}
		got, err := f.Query(req, false)
		if err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(got.IDs, want.IDs) {
			t.Fatalf("query %d: follower %v, primary %v", q, got.IDs, want.IDs)
		}
	}

	if _, err := f.Write(&kwsc.WriteRequest{Op: kwsc.OpInsert,
		Point: []float64{0.5, 0.5}, Doc: []kwsc.Keyword{1, 2}}); err != ErrReadOnly {
		t.Fatalf("follower write: %v, want ErrReadOnly", err)
	}

	// The follower's own HTTP surface reports replication health per shard.
	fts := httptest.NewServer(f.Handler())
	defer fts.Close()
	resp, err := http.Get(fts.URL + "/repl/v1/shard/000/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h healthReply
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.AppliedSeq < seqs[0] {
		t.Fatalf("health applied_seq %d < primary seq %d", h.AppliedSeq, seqs[0])
	}
	// Replication gauges are exported per shard directory.
	snap := obs.Default().Snapshot()
	if got := snap.Gauge(`kwsc_repl_applied_seq{shard="shard-000"}`); uint64(got) < seqs[0] {
		t.Fatalf("applied-seq gauge %d < primary seq %d", got, seqs[0])
	}
}

// fakeLegServer serves a canned replica leg: /query returns reply, /health
// returns health.
func fakeLegServer(t *testing.T, reply legReply, delay time.Duration) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", func(w http.ResponseWriter, _ *http.Request) {
		if delay > 0 {
			time.Sleep(delay)
		}
		writeJSON(w, http.StatusOK, reply)
	})
	mux.HandleFunc("GET /health", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, healthReply{StalenessMs: reply.StalenessMs})
	})
	return httptest.NewServer(mux)
}

// testGroup builds a replica group over a one-shard in-memory writer seeded
// with matching objects, plus the given legs. Probes run once (hour cadence)
// so tests control health fields deterministically.
func testGroup(t *testing.T, legs []*remoteLeg, hedgeAfter time.Duration) (*replicaGroup, []int64) {
	t.Helper()
	ix, err := kwsc.NewDynamicORPKW(2, testK, 0)
	if err != nil {
		t.Fatal(err)
	}
	var want []int64
	for i := 0; i < 5; i++ {
		h, err := ix.Insert(kwsc.Object{
			Point: kwsc.Point{0.1 * float64(i+1), 0.5},
			Doc:   []kwsc.Keyword{1, 2, kwsc.Keyword(10 + i)},
		})
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, h)
	}
	writer := &dynamicShard{id: 0, n: 1, ix: ix, now: time.Now}
	g := newReplicaGroup(0, writer, legs, hedgeAfter, time.Hour)
	t.Cleanup(func() { g.close() })
	return g, want
}

func groupCollect(g *replicaGroup, staleness time.Duration) legResult {
	req := &kwsc.QueryRequest{Keywords: []kwsc.Keyword{1, 2},
		MaxStalenessMs: int64(staleness / time.Millisecond)}
	opts := kwsc.QueryOpts{}
	return g.collect(req, req.BoundingRect(2), req.ExactRegion(), req.Keywords, opts, staleness)
}

// TestReplicaGroupRouting pins the read-routing policy: fresh reads hit the
// writer, bounded reads prefer an admissible replica, dead replicas are
// skipped with a failover, and when the writer is down and only a lagging
// replica survives the group serves its answer flagged stale.
func TestReplicaGroupRouting(t *testing.T) {
	remote := fakeLegServer(t, legReply{IDs: []int64{999}, Outcome: "ok"}, 0)
	defer remote.Close()
	leg := &remoteLeg{
		name: "replica-0", baseURL: remote.URL,
		client:   &http.Client{Timeout: time.Second},
		liveness: time.Hour,
	}
	g, want := testGroup(t, []*remoteLeg{leg}, 0)
	waitFor(t, 2*time.Second, "initial probe", leg.alive)

	t.Run("fresh-read-hits-writer", func(t *testing.T) {
		res := groupCollect(g, 0)
		if res.err != nil || res.replica != "writer" {
			t.Fatalf("fresh read: replica=%q err=%v", res.replica, res.err)
		}
		if !slices.Equal(res.ids, want) {
			t.Fatalf("fresh read ids %v, want %v", res.ids, want)
		}
	})
	t.Run("bounded-read-prefers-replica", func(t *testing.T) {
		res := groupCollect(g, time.Minute)
		if res.err != nil || res.replica != "replica-0" {
			t.Fatalf("bounded read: replica=%q err=%v", res.replica, res.err)
		}
		if !slices.Equal(res.ids, []int64{999}) {
			t.Fatalf("bounded read ids %v, want [999]", res.ids)
		}
	})
	t.Run("dead-replica-fails-over-to-writer", func(t *testing.T) {
		saved := leg.lastOK.Load()
		leg.lastOK.Store(time.Now().Add(-time.Hour).UnixNano())
		defer leg.lastOK.Store(saved)
		before := obs.Default().Snapshot().Counter("kwscd_failovers_total")
		res := groupCollect(g, time.Minute)
		if res.err != nil || res.replica != "writer" {
			t.Fatalf("dead-replica read: replica=%q err=%v", res.replica, res.err)
		}
		after := obs.Default().Snapshot().Counter("kwscd_failovers_total")
		if after <= before {
			t.Fatal("skipping a dead replica did not count a failover")
		}
	})
	t.Run("writer-down-degrades-to-stale-replica", func(t *testing.T) {
		leg.stalenessMs.Store(5_000) // lagging far beyond the 1s bound below
		defer leg.stalenessMs.Store(0)
		core.ArmFailpoint(FPWriterDown, func() { panic("writer down") })
		defer core.DisarmAllFailpoints()
		before := obs.Default().Snapshot()
		res := groupCollect(g, time.Second)
		if res.err != nil {
			t.Fatalf("degraded read failed outright: %v", res.err)
		}
		if res.replica != "replica-0" || !res.stale {
			t.Fatalf("degraded read: replica=%q stale=%v, want stale replica-0", res.replica, res.stale)
		}
		after := obs.Default().Snapshot()
		if d := after.Counter("kwscd_failovers_total") - before.Counter("kwscd_failovers_total"); d < 1 {
			t.Fatalf("failover counter delta %d, want >= 1", d)
		}
		if d := after.Counter("kwscd_stale_served_total") - before.Counter("kwscd_stale_served_total"); d < 1 {
			t.Fatalf("stale-served counter delta %d, want >= 1", d)
		}
	})
	t.Run("writer-down-and-no-replica-errors", func(t *testing.T) {
		saved := leg.lastOK.Load()
		leg.lastOK.Store(time.Now().Add(-time.Hour).UnixNano())
		defer leg.lastOK.Store(saved)
		core.ArmFailpoint(FPWriterDown, func() { panic("writer down") })
		defer core.DisarmAllFailpoints()
		res := groupCollect(g, time.Minute)
		if res.err == nil {
			t.Fatal("every leg down, but collect reported success")
		}
	})
}

// TestHedgedReads: a slow replica leg is hedged to the writer after
// HedgeAfter, so the query returns at writer latency instead of waiting out
// the straggler.
func TestHedgedReads(t *testing.T) {
	remote := fakeLegServer(t, legReply{IDs: []int64{999}, Outcome: "ok"}, 300*time.Millisecond)
	defer remote.Close()
	leg := &remoteLeg{
		name: "replica-0", baseURL: remote.URL,
		client:   &http.Client{Timeout: 2 * time.Second},
		liveness: time.Hour,
	}
	g, want := testGroup(t, []*remoteLeg{leg}, 5*time.Millisecond)
	waitFor(t, 2*time.Second, "initial probe", leg.alive)

	before := obs.Default().Snapshot().Counter("kwscd_hedged_reads_total")
	start := time.Now()
	res := groupCollect(g, time.Minute)
	if res.err != nil {
		t.Fatal(res.err)
	}
	if res.replica != "writer" || !slices.Equal(res.ids, want) {
		t.Fatalf("hedged read answered by %q with %v, want writer %v", res.replica, res.ids, want)
	}
	if el := time.Since(start); el > 250*time.Millisecond {
		t.Fatalf("hedged read took %v — waited out the slow replica", el)
	}
	after := obs.Default().Snapshot().Counter("kwscd_hedged_reads_total")
	if after <= before {
		t.Fatal("hedged-read counter did not advance")
	}
}

// TestPrimaryWithReplicaEndToEnd drives the whole deployment through public
// configuration: a durable primary with ReplicaURLs, a real follower server
// on that URL, bounded-staleness reads served by the replica, then the
// replica killed — the primary keeps answering the same reads from the
// writer, counting the failover.
func TestPrimaryWithReplicaEndToEnd(t *testing.T) {
	// Reserve the follower's address first so the primary can be configured
	// with it before the follower (which needs the primary's URL) exists.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	followerURL := fmt.Sprintf("http://%s", ln.Addr())

	objs := genObjects(300, 71)
	p, err := NewDynamic(t.TempDir(), objs, Config{
		Shards: 2, Dim: 2, K: testK,
		ReplicaURLs:     []string{followerURL},
		ReplicaProbe:    5 * time.Millisecond,
		ReplicaLiveness: 40 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	ts := httptest.NewServer(p.Handler())
	defer ts.Close()

	f, err := NewFollower(t.TempDir(), ts.URL, Config{FollowerPoll: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fts := httptest.NewUnstartedServer(f.Handler())
	fts.Listener.Close()
	fts.Listener = ln
	fts.Start()
	stopped := false
	defer func() {
		if !stopped {
			fts.Close()
		}
	}()

	seqs := primarySeqs(p)
	waitFor(t, 5*time.Second, "follower catch-up", func() bool { return followerCaughtUp(f, seqs) })
	legs := make([]*remoteLeg, len(p.shards))
	for i, sh := range p.shards {
		legs[i] = sh.(*replicaGroup).legs[0]
	}
	waitFor(t, 5*time.Second, "replica legs alive", func() bool {
		for _, l := range legs {
			if !l.alive() || l.stalenessMs.Load() < 0 {
				return false
			}
		}
		return true
	})

	bounded := &kwsc.QueryRequest{Keywords: []kwsc.Keyword{1, 2}, MaxStalenessMs: 60_000}
	fresh := &kwsc.QueryRequest{Keywords: []kwsc.Keyword{1, 2}}
	want, err := p.Query(fresh, false)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := p.Query(bounded, false)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(resp.IDs, want.IDs) {
		t.Fatalf("bounded read %v != fresh read %v", resp.IDs, want.IDs)
	}
	sawReplica := false
	for _, so := range resp.Shards {
		if so.Replica == "replica-0" {
			sawReplica = true
		}
	}
	if !sawReplica {
		t.Fatalf("no shard leg was served by the replica: %+v", resp.Shards)
	}

	// Kill the follower process; the primary must keep answering bounded
	// reads from the writer once the probes declare the legs dead.
	stopped = true
	fts.Close()
	waitFor(t, 5*time.Second, "legs declared dead", func() bool {
		for _, l := range legs {
			if l.alive() {
				return false
			}
		}
		return true
	})
	before := obs.Default().Snapshot().Counter("kwscd_failovers_total")
	resp, err = p.Query(bounded, false)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(resp.IDs, want.IDs) {
		t.Fatalf("post-failover read %v != fresh read %v", resp.IDs, want.IDs)
	}
	for _, so := range resp.Shards {
		if so.Replica != "writer" {
			t.Fatalf("shard %d served by %q with the replica down", so.Shard, so.Replica)
		}
	}
	after := obs.Default().Snapshot().Counter("kwscd_failovers_total")
	if after <= before {
		t.Fatal("replica-down reads did not count failovers")
	}
}
