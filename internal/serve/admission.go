package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"kwsc/internal/obs"
)

// AdmissionConfig bounds the work the server accepts. The zero value admits
// everything at full service.
type AdmissionConfig struct {
	// MaxInflight is the global hard cap on concurrently executing
	// requests; beyond it requests are shed with 429 (0 = unlimited).
	MaxInflight int
	// SoftInflight is the degrade threshold: with more than this many
	// requests in flight (but still under MaxInflight), queries are
	// admitted in degraded mode — a strict node budget that makes the
	// index path stop early and static shards fall back to their
	// predictable-cost baseline (0 = no degraded band).
	SoftInflight int
	// ClientRate refills each client's token bucket at this many requests
	// per second (0 = no per-client quota).
	ClientRate float64
	// ClientBurst is each bucket's capacity (0 with ClientRate > 0 defaults
	// to max(1, ClientRate)).
	ClientBurst float64
}

// Decision classifies one admission check.
type Decision int

const (
	// Admit serves the request at full fidelity.
	Admit Decision = iota
	// AdmitDegraded serves the request in degraded mode.
	AdmitDegraded
	// ShedQuota rejects: the client's token bucket is empty.
	ShedQuota
	// ShedOverload rejects: the global in-flight cap is reached.
	ShedOverload
)

func (d Decision) String() string {
	switch d {
	case Admit:
		return "admit"
	case AdmitDegraded:
		return "degraded"
	case ShedQuota:
		return "shed-quota"
	default:
		return "shed-overload"
	}
}

// Shed reports whether the decision rejects the request.
func (d Decision) Shed() bool { return d == ShedQuota || d == ShedOverload }

var (
	admAdmitted  = obs.Default().Counter(`kwscd_admitted_total{mode="full"}`)
	admDegraded  = obs.Default().Counter(`kwscd_admitted_total{mode="degraded"}`)
	admShedQuota = obs.Default().Counter(`kwscd_shed_total{reason="quota"}`)
	admShedLoad  = obs.Default().Counter(`kwscd_shed_total{reason="overload"}`)
	admInflight  = obs.Default().Gauge(`kwscd_inflight`)
)

// bucket is one client's token bucket; guarded by admission.mu.
type bucket struct {
	tokens float64
	last   time.Time
}

// admission is the server's front door: per-client token buckets plus the
// global in-flight window. Safe for concurrent use.
type admission struct {
	cfg      AdmissionConfig
	now      func() time.Time // injectable clock for tests
	inflight atomic.Int64

	mu      sync.Mutex
	buckets map[string]*bucket
}

func newAdmission(cfg AdmissionConfig) *admission {
	return &admission{cfg: cfg, now: time.Now, buckets: make(map[string]*bucket)}
}

// acquire admits or rejects one request for the given client. When the
// decision is not a shed, the caller must invoke release exactly once after
// the request finishes; on shed decisions release is a no-op.
func (a *admission) acquire(client string) (Decision, func()) {
	if !a.takeToken(client) {
		admShedQuota.Inc()
		return ShedQuota, func() {}
	}
	in := a.inflight.Add(1)
	if a.cfg.MaxInflight > 0 && in > int64(a.cfg.MaxInflight) {
		a.inflight.Add(-1)
		admShedLoad.Inc()
		return ShedOverload, func() {}
	}
	admInflight.Set(in)
	var done atomic.Bool
	release := func() {
		if done.CompareAndSwap(false, true) {
			admInflight.Set(a.inflight.Add(-1))
		}
	}
	if a.cfg.SoftInflight > 0 && in > int64(a.cfg.SoftInflight) {
		admDegraded.Inc()
		return AdmitDegraded, release
	}
	admAdmitted.Inc()
	return Admit, release
}

// takeToken refills and debits the client's bucket; true = token granted.
func (a *admission) takeToken(client string) bool {
	if a.cfg.ClientRate <= 0 {
		return true
	}
	burst := a.cfg.ClientBurst
	if burst <= 0 {
		burst = a.cfg.ClientRate
		if burst < 1 {
			burst = 1
		}
	}
	now := a.now()
	a.mu.Lock()
	defer a.mu.Unlock()
	b, ok := a.buckets[client]
	if !ok {
		b = &bucket{tokens: burst, last: now}
		a.buckets[client] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * a.cfg.ClientRate
		if b.tokens > burst {
			b.tokens = burst
		}
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Inflight returns the number of currently executing requests.
func (a *admission) Inflight() int64 { return a.inflight.Load() }
