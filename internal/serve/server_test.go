package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"slices"
	"strings"
	"sync"
	"testing"

	"kwsc"
	"kwsc/internal/geom"
	"kwsc/internal/workload"
)

const testK = 2

// genObjects produces a deterministic synthetic corpus.
func genObjects(n int, seed int64) []kwsc.Object {
	ds := workload.Gen(workload.Config{Seed: seed, Objects: n, Dim: 2, Vocab: 60, DocLen: 6})
	objs := make([]kwsc.Object, ds.Len())
	for i := range objs {
		objs[i] = *ds.Object(int32(i))
	}
	return objs
}

// brute returns the ground-truth global ids for a query over the corpus.
func brute(objs []kwsc.Object, region kwsc.Region, ws []kwsc.Keyword) []int64 {
	var out []int64
	for i, o := range objs {
		if region != nil && !region.ContainsPoint(o.Point) {
			continue
		}
		set := make(map[kwsc.Keyword]bool, len(o.Doc))
		for _, w := range o.Doc {
			set[w] = true
		}
		ok := true
		for _, w := range ws {
			if !set[w] {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, int64(i))
		}
	}
	return out
}

func randQuery(rng *rand.Rand) *kwsc.QueryRequest {
	req := &kwsc.QueryRequest{Keywords: workload.RandKeywords(rng, 60, testK)}
	switch rng.Intn(3) {
	case 0: // rect
		r := workload.RandRect(rng, 2, 0.2+rng.Float64()*0.6)
		req.Rect = &kwsc.RectWire{Lo: r.Lo, Hi: r.Hi}
	case 1: // sphere
		req.Sphere = &kwsc.SphereWire{
			Center: []float64{rng.Float64(), rng.Float64()},
			Radius: 0.1 + rng.Float64()*0.4,
		}
	}
	return req
}

func regionOf(req *kwsc.QueryRequest) kwsc.Region {
	switch {
	case req.Rect != nil:
		return geom.NewRect(req.Rect.Lo, req.Rect.Hi)
	case req.Sphere != nil:
		return geom.NewSphere(kwsc.Point(req.Sphere.Center), req.Sphere.Radius)
	}
	return nil
}

// TestStaticShardedEqualsUnsharded is the core property: a partitioned
// deployment answers every query with exactly the ids an unsharded scan
// produces, under both partitioning schemes and several shard counts.
func TestStaticShardedEqualsUnsharded(t *testing.T) {
	objs := genObjects(1500, 11)
	for _, mode := range []PartitionMode{PartitionHash, PartitionRange} {
		for _, shards := range []int{1, 3, 4} {
			t.Run(fmt.Sprintf("%v-%d", mode, shards), func(t *testing.T) {
				s, err := NewStatic(objs, Config{Shards: shards, Partition: mode, K: testK})
				if err != nil {
					t.Fatal(err)
				}
				defer s.Close()
				rng := rand.New(rand.NewSource(int64(shards) * 97))
				for q := 0; q < 40; q++ {
					req := randQuery(rng)
					resp, err := s.Query(req, false)
					if err != nil {
						t.Fatalf("query %d: %v", q, err)
					}
					want := brute(objs, regionOf(req), req.Keywords)
					if !slices.Equal(resp.IDs, want) && !(len(resp.IDs) == 0 && len(want) == 0) {
						t.Fatalf("query %d (%+v): got %v, want %v", q, req, resp.IDs, want)
					}
					if resp.Count != len(resp.IDs) {
						t.Fatalf("count %d != len(ids) %d", resp.Count, len(resp.IDs))
					}
					if len(resp.Shards) != shards {
						t.Fatalf("got %d shard outcomes, want %d", len(resp.Shards), shards)
					}
				}
			})
		}
	}
}

// TestStaticLimitPrefix checks the limit cut returns the limit smallest
// matching ids — a prefix of the full sorted answer.
func TestStaticLimitPrefix(t *testing.T) {
	objs := genObjects(1200, 13)
	s, err := NewStatic(objs, Config{Shards: 3, K: testK})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rng := rand.New(rand.NewSource(5))
	for q := 0; q < 25; q++ {
		req := randQuery(rng)
		full := brute(objs, regionOf(req), req.Keywords)
		if len(full) < 2 {
			continue
		}
		req.Limit = 1 + rng.Intn(len(full))
		resp, err := s.Query(req, false)
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.IDs) > req.Limit {
			t.Fatalf("limit %d, got %d ids", req.Limit, len(resp.IDs))
		}
		// Every returned id must match, sorted ascending; ids beyond the
		// limit may be dropped but nothing non-matching may appear.
		if !slices.IsSorted(resp.IDs) {
			t.Fatalf("ids not sorted: %v", resp.IDs)
		}
		for _, id := range resp.IDs {
			if !slices.Contains(full, id) {
				t.Fatalf("id %d not in true answer %v", id, full)
			}
		}
		if len(full) > req.Limit && !resp.Truncated {
			t.Fatalf("limit cut %d < %d results but Truncated unset", req.Limit, len(full))
		}
	}
}

// TestDynamicShardedEqualsUnsharded routes inserts and deletes through the
// write path, then checks sharded queries return exactly the live matching
// objects (by handle identity).
func TestDynamicShardedEqualsUnsharded(t *testing.T) {
	objs := genObjects(900, 17)
	for _, mode := range []PartitionMode{PartitionHash, PartitionRange} {
		t.Run(mode.String(), func(t *testing.T) {
			s, err := NewDynamic("", nil, Config{Shards: 3, Partition: mode, Dim: 2, K: testK})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()

			handleOf := make(map[int64]int) // global handle -> object index
			live := make(map[int]bool)
			for i, o := range objs {
				resp, err := s.Write(&kwsc.WriteRequest{Op: kwsc.OpInsert, Point: o.Point, Doc: o.Doc})
				if err != nil {
					t.Fatalf("insert %d: %v", i, err)
				}
				handleOf[resp.Handle] = i
				live[i] = true
			}
			// Delete a third of them through the routed write path.
			rng := rand.New(rand.NewSource(23))
			for h, i := range handleOf {
				if !live[i] || rng.Intn(3) != 0 {
					continue
				}
				resp, err := s.Write(&kwsc.WriteRequest{Op: kwsc.OpDelete, Handle: h})
				if err != nil {
					t.Fatalf("delete %d: %v", h, err)
				}
				if !resp.Deleted {
					t.Fatalf("delete %d: handle not found", h)
				}
				live[i] = false
			}

			for q := 0; q < 30; q++ {
				req := randQuery(rng)
				resp, err := s.Query(req, false)
				if err != nil {
					t.Fatal(err)
				}
				got := make([]int, 0, len(resp.IDs))
				for _, h := range resp.IDs {
					i, ok := handleOf[h]
					if !ok {
						t.Fatalf("query returned unknown handle %d", h)
					}
					got = append(got, i)
				}
				slices.Sort(got)
				var want []int
				for _, id := range brute(objs, regionOf(req), req.Keywords) {
					if live[int(id)] {
						want = append(want, int(id))
					}
				}
				if !slices.Equal(got, want) && !(len(got) == 0 && len(want) == 0) {
					t.Fatalf("query %d: got objects %v, want %v", q, got, want)
				}
			}
		})
	}
}

// TestBudgetStopPrefixCorrect: a node-budget stop on a dynamic deployment
// (no fallback path) must yield a subset of the true answer with Truncated
// set — prefix-correct unions under per-shard policy stops.
func TestBudgetStopPrefixCorrect(t *testing.T) {
	objs := genObjects(1500, 29)
	s, err := NewDynamic("", objs, Config{Shards: 3, Dim: 2, K: testK})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Seed loading used routed inserts; handles encode positions per shard,
	// so map handles back through a full-universe query first.
	rng := rand.New(rand.NewSource(31))
	sawStop := false
	for q := 0; q < 40; q++ {
		req := randQuery(rng)
		full, err := s.Query(req, false)
		if err != nil {
			t.Fatal(err)
		}
		req.NodeBudget = 1 + int64(rng.Intn(16))
		part, err := s.Query(req, false)
		if err != nil {
			t.Fatal(err)
		}
		fullSet := make(map[int64]bool, len(full.IDs))
		for _, id := range full.IDs {
			fullSet[id] = true
		}
		for _, id := range part.IDs {
			if !fullSet[id] {
				t.Fatalf("budget-stopped query returned id %d outside the true answer", id)
			}
		}
		stopped := false
		for _, so := range part.Shards {
			if so.Outcome == "budget" {
				stopped = true
			} else if so.Outcome != "ok" {
				t.Fatalf("unexpected outcome %q", so.Outcome)
			}
		}
		if stopped {
			sawStop = true
			if !part.Truncated {
				t.Fatal("budget stop without Truncated")
			}
		} else if !slices.Equal(part.IDs, full.IDs) {
			t.Fatal("no stop but results differ")
		}
	}
	if !sawStop {
		t.Fatal("workload never tripped the node budget; test is vacuous")
	}
}

// TestDegradedModeStaysCorrect: the degraded execution path (strict node
// budget + inverted-index fallback on static shards) must still return
// exactly the right answer — degradation trades latency predictability, not
// correctness.
func TestDegradedModeStaysCorrect(t *testing.T) {
	objs := genObjects(1200, 37)
	s, err := NewStatic(objs, Config{Shards: 3, K: testK, DegradedNodeBudget: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rng := rand.New(rand.NewSource(41))
	sawFallback := false
	for q := 0; q < 30; q++ {
		req := randQuery(rng)
		resp, err := s.Query(req, true) // degraded admission band
		if err != nil {
			t.Fatal(err)
		}
		if !resp.Degraded {
			t.Fatal("degraded query not flagged Degraded")
		}
		want := brute(objs, regionOf(req), req.Keywords)
		if !slices.Equal(resp.IDs, want) && !(len(resp.IDs) == 0 && len(want) == 0) {
			t.Fatalf("degraded query %d: got %v, want %v", q, resp.IDs, want)
		}
		for _, so := range resp.Shards {
			if so.FellBack {
				sawFallback = true
			}
		}
	}
	if !sawFallback {
		t.Fatal("degraded budget never forced a fallback; test is vacuous")
	}
}

// TestDurableShardsRecover: a durable sharded deployment recovers every
// shard's WAL on reopen, keeps handles stable, and routes deletes to the
// same shard after restart.
func TestDurableShardsRecover(t *testing.T) {
	dir := t.TempDir()
	objs := genObjects(400, 43)
	cfg := Config{Shards: 2, Dim: 2, K: testK}

	s, err := NewDynamic(dir, objs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	extra, err := s.Write(&kwsc.WriteRequest{Op: kwsc.OpInsert,
		Point: []float64{0.5, 0.5}, Doc: []kwsc.Keyword{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	req := &kwsc.QueryRequest{Keywords: []kwsc.Keyword{1, 2}}
	before, err := s.Query(req, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: seed must NOT be double-loaded (shards are non-empty).
	s2, err := NewDynamic(dir, objs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got, want := s2.Live(), len(objs)+1; got != want {
		t.Fatalf("live after recovery = %d, want %d", got, want)
	}
	after, err := s2.Query(req, false)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(before.IDs, after.IDs) {
		t.Fatalf("results changed across restart: %v vs %v", before.IDs, after.IDs)
	}
	// The pre-restart handle still routes to its owning shard.
	del, err := s2.Write(&kwsc.WriteRequest{Op: kwsc.OpDelete, Handle: extra.Handle})
	if err != nil {
		t.Fatal(err)
	}
	if !del.Deleted || del.Shard != extra.Shard {
		t.Fatalf("post-restart delete: %+v (inserted on shard %d)", del, extra.Shard)
	}
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func TestHTTPEndpoints(t *testing.T) {
	objs := genObjects(600, 47)
	s, err := NewStatic(objs, Config{Shards: 2, K: testK})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	t.Run("query-ok", func(t *testing.T) {
		req := &kwsc.QueryRequest{Keywords: []kwsc.Keyword{1, 2}}
		resp, body := postJSON(t, ts.URL+kwsc.PathQuery, req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		var qr kwsc.QueryResponse
		if err := json.Unmarshal(body, &qr); err != nil {
			t.Fatal(err)
		}
		want := brute(objs, nil, []kwsc.Keyword{1, 2})
		if !slices.Equal(qr.IDs, want) && !(len(qr.IDs) == 0 && len(want) == 0) {
			t.Fatalf("got %v, want %v", qr.IDs, want)
		}
	})
	t.Run("malformed-json", func(t *testing.T) {
		resp, body := postRaw(t, ts.URL+kwsc.PathQuery, `{"keywords": [1, 2`)
		assertError(t, resp, body, http.StatusBadRequest, kwsc.CodeInvalid)
	})
	t.Run("unknown-field", func(t *testing.T) {
		resp, body := postRaw(t, ts.URL+kwsc.PathQuery, `{"keywords": [1, 2], "nope": true}`)
		assertError(t, resp, body, http.StatusBadRequest, kwsc.CodeInvalid)
	})
	t.Run("wrong-arity", func(t *testing.T) {
		resp, body := postJSON(t, ts.URL+kwsc.PathQuery, &kwsc.QueryRequest{Keywords: []kwsc.Keyword{1, 2, 3}})
		assertError(t, resp, body, http.StatusBadRequest, kwsc.CodeInvalid)
	})
	t.Run("write-static", func(t *testing.T) {
		resp, body := postJSON(t, ts.URL+kwsc.PathWrite, &kwsc.WriteRequest{
			Op: kwsc.OpInsert, Point: []float64{0.1, 0.2}, Doc: []kwsc.Keyword{1, 2}})
		assertError(t, resp, body, http.StatusBadRequest, kwsc.CodeUnsupported)
	})
	t.Run("healthz", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(body)) != "ok" {
			t.Fatalf("healthz: %d %q", resp.StatusCode, body)
		}
	})
	t.Run("metrics", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "kwscd_") {
			t.Fatalf("metrics missing kwscd_ series: %d\n%s", resp.StatusCode, body)
		}
	})
	t.Run("debug-stats", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/debug/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var stats map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
			t.Fatal(err)
		}
		if stats["mode"] != "static" || stats["shards"] != float64(2) {
			t.Fatalf("stats: %v", stats)
		}
	})
}

func postRaw(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func assertError(t *testing.T, resp *http.Response, body []byte, status int, code string) {
	t.Helper()
	if resp.StatusCode != status {
		t.Fatalf("status %d, want %d: %s", resp.StatusCode, status, body)
	}
	var er kwsc.ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatalf("non-JSON error body %q: %v", body, err)
	}
	if er.Code != code {
		t.Fatalf("code %q, want %q (%s)", er.Code, code, er.Error)
	}
}

// TestHTTPAdmission pins the shed behavior over the wire: quota exhaustion
// and overload both produce 429 with the right code and Retry-After.
func TestHTTPAdmission(t *testing.T) {
	objs := genObjects(300, 53)
	s, err := NewStatic(objs, Config{
		Shards:    2,
		K:         testK,
		Admission: AdmissionConfig{ClientRate: 0.001, ClientBurst: 2, MaxInflight: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := &kwsc.QueryRequest{Client: "tester", Keywords: []kwsc.Keyword{1, 2}}
	for i := 0; i < 2; i++ {
		resp, body := postJSON(t, ts.URL+kwsc.PathQuery, req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: %d %s", i, resp.StatusCode, body)
		}
	}
	resp, body := postJSON(t, ts.URL+kwsc.PathQuery, req)
	assertError(t, resp, body, http.StatusTooManyRequests, kwsc.CodeQuota)
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	// Other clients are unaffected by tester's quota.
	other := &kwsc.QueryRequest{Client: "other", Keywords: []kwsc.Keyword{1, 2}}
	if resp, body := postJSON(t, ts.URL+kwsc.PathQuery, other); resp.StatusCode != http.StatusOK {
		t.Fatalf("other client shed: %d %s", resp.StatusCode, body)
	}

	// Fill the in-flight window directly, then watch the wire shed with
	// the overload code.
	var releases []func()
	for i := 0; s.adm.Inflight() < 8; i++ {
		d, r := s.adm.acquire(fmt.Sprintf("filler-%d", i))
		if d.Shed() {
			t.Fatalf("filler %d shed: %v", i, d)
		}
		releases = append(releases, r)
	}
	// Fresh clients (with quota to spare) still shed on the global window.
	fresh := &kwsc.QueryRequest{Client: "fresh", Keywords: []kwsc.Keyword{1, 2}}
	resp, body = postJSON(t, ts.URL+kwsc.PathQuery, fresh)
	assertError(t, resp, body, http.StatusTooManyRequests, kwsc.CodeOverload)
	for _, r := range releases {
		r()
	}
	if resp, body := postJSON(t, ts.URL+kwsc.PathQuery, fresh); resp.StatusCode != http.StatusOK {
		t.Fatalf("after release: %d %s", resp.StatusCode, body)
	}
}

// TestPartitionerDeterminism pins content-hash routing to be a pure function
// of object content — required for stable routing across process restarts.
func TestPartitionerDeterminism(t *testing.T) {
	objs := genObjects(200, 59)
	p1 := newPartitioner(PartitionHash, 4, objs)
	p2 := newPartitioner(PartitionHash, 4, nil) // hash mode ignores seed
	for i, o := range objs {
		if a, b := p1.route(o), p2.route(o); a != b {
			t.Fatalf("object %d routes to %d and %d", i, a, b)
		}
	}
	// Range cuts derive from seed quantiles; every coordinate routes within
	// bounds and boundary coordinates go right (shard owns [lo, hi)).
	pr := newPartitioner(PartitionRange, 4, objs)
	for i, o := range objs {
		s := pr.route(o)
		if s < 0 || s >= 4 {
			t.Fatalf("object %d routed to %d", i, s)
		}
	}
	cut := pr.cuts[1]
	onCut := kwsc.Object{Point: kwsc.Point{cut, 0}, Doc: []kwsc.Keyword{1, 2}}
	if got := pr.route(onCut); got != 2 {
		t.Fatalf("coordinate exactly on cuts[1] routed to %d, want 2", got)
	}
	// Handle encoding round-trips.
	for local := int64(0); local < 5; local++ {
		for shard := 0; shard < 4; shard++ {
			l, sh := splitHandle(globalHandle(local, shard, 4), 4)
			if l != local || sh != shard {
				t.Fatalf("handle round-trip (%d,%d) -> (%d,%d)", local, shard, l, sh)
			}
		}
	}
}

// TestStalenessCache: with max_staleness_ms set, a dynamic shard may answer
// from a cached snapshot that misses the newest write; with it unset the
// write is immediately visible.
func TestStalenessCache(t *testing.T) {
	s, err := NewDynamic("", nil, Config{Shards: 1, Dim: 2, K: testK})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	fresh := &kwsc.QueryRequest{Keywords: []kwsc.Keyword{1, 2}}
	stale := &kwsc.QueryRequest{Keywords: []kwsc.Keyword{1, 2}, MaxStalenessMs: 60_000}
	if _, err := s.Query(stale, false); err != nil { // prime the snapshot cache
		t.Fatal(err)
	}
	if _, err := s.Write(&kwsc.WriteRequest{Op: kwsc.OpInsert,
		Point: []float64{0.5, 0.5}, Doc: []kwsc.Keyword{1, 2}}); err != nil {
		t.Fatal(err)
	}
	got, err := s.Query(stale, false)
	if err != nil {
		t.Fatal(err)
	}
	if got.Count != 0 {
		t.Fatalf("stale read saw the new write (count=%d); cache not reused", got.Count)
	}
	got, err = s.Query(fresh, false)
	if err != nil {
		t.Fatal(err)
	}
	if got.Count != 1 {
		t.Fatalf("fresh read missed the write (count=%d)", got.Count)
	}
}

// TestStalenessCacheUnderChurn hammers the cached-snapshot read path while
// writers churn the shards: bounded-staleness and fresh reads race inserts
// and deletes, and every answer must still be a set of handles the server
// actually issued. Run under -race via `make race`; the quiescent behavior
// is pinned by TestStalenessCache above.
func TestStalenessCacheUnderChurn(t *testing.T) {
	s, err := NewDynamic("", nil, Config{Shards: 3, Dim: 2, K: testK})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var mu sync.Mutex
	issued := make(map[int64]bool)
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	errc := make(chan error, 8)
	for w := 0; w < 3; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			var mine []int64
			for i := 0; i < 300; i++ {
				if len(mine) > 0 && rng.Intn(4) == 0 {
					h := mine[rng.Intn(len(mine))]
					if _, err := s.Write(&kwsc.WriteRequest{Op: kwsc.OpDelete, Handle: h}); err != nil {
						errc <- err
						return
					}
					continue
				}
				resp, err := s.Write(&kwsc.WriteRequest{Op: kwsc.OpInsert,
					Point: []float64{rng.Float64(), rng.Float64()},
					Doc:   workload.RandKeywords(rng, 60, testK+1)})
				if err != nil {
					errc <- err
					return
				}
				mine = append(mine, resp.Handle)
				mu.Lock()
				issued[resp.Handle] = true
				mu.Unlock()
			}
		}(w)
	}
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			rng := rand.New(rand.NewSource(int64(200 + r)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				req := randQuery(rng)
				if rng.Intn(2) == 0 {
					req.MaxStalenessMs = 1 + int64(rng.Intn(20))
				}
				resp, err := s.Query(req, false)
				if err != nil {
					errc <- err
					return
				}
				if !slices.IsSorted(resp.IDs) {
					errc <- fmt.Errorf("reader %d: unsorted ids %v", r, resp.IDs)
					return
				}
				mu.Lock()
				for _, id := range resp.IDs {
					if !issued[id] {
						err = fmt.Errorf("reader %d: handle %d never issued", r, id)
						break
					}
				}
				mu.Unlock()
				if err != nil {
					errc <- err
					return
				}
			}
		}(r)
	}
	// Writers run to completion with readers racing them the whole way;
	// errc is buffered wide enough that no goroutine ever blocks on it.
	writers.Wait()
	close(stop)
	readers.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
}
