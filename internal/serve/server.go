// Package serve is the sharded query service behind cmd/kwscd: it
// partitions a corpus across N shards (content-hash or rank-space range
// partition), fans queries out scatter-gather with one shared wall-clock
// deadline, merges the per-shard prefix-correct partial results
// deterministically, and routes writes to the owning shard, acknowledging
// after that shard's WAL ack. An admission controller sits in front:
// per-client token buckets, a global in-flight window with a degraded band,
// and 429 load shedding. Everything is instrumented through internal/obs
// and exported at /metrics. See DESIGN.md §14.
package serve

import (
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"kwsc"
	"kwsc/internal/obs"
	"kwsc/internal/repl"
)

// Config parameterizes a Server. The zero value serves one shard with no
// admission limits.
type Config struct {
	// Shards is the partition count (<= 0 means 1).
	Shards int
	// Partition selects hash or range partitioning.
	Partition PartitionMode
	// Dim and K fix the corpus dimensionality and query keyword arity.
	Dim, K int
	// Admission bounds the accepted load.
	Admission AdmissionConfig
	// DefaultTimeout bounds queries that carry no timeout_ms of their own
	// (0 means 2s; negative disables the default).
	DefaultTimeout time.Duration
	// DegradedNodeBudget is the per-shard node budget forced onto queries
	// admitted in the degraded band (0 means 4096). Static shards hitting
	// it fall back to their inverted-index baseline; dynamic shards return
	// the prefix collected so far.
	DegradedNodeBudget int64
	// FlatLayout builds static shards in the cache-conscious flat layout.
	FlatLayout bool
	// BuildOptions are forwarded to every shard index construction.
	BuildOptions []kwsc.Option
	// DurableOptions are forwarded to OpenDurable for durable shards.
	DurableOptions []kwsc.DurableOption

	// ReplicaURLs are base URLs of follower kwscd processes replicating this
	// primary (dynamic durable mode only). Each shard then becomes a replica
	// group: bounded-staleness reads fan out across fresh-enough replicas
	// with failover to the writer; a request with no staleness bound always
	// reads the writer.
	ReplicaURLs []string
	// HedgeAfter launches the next replica candidate when the current one
	// has not answered within this latency (0 = no hedging).
	HedgeAfter time.Duration
	// ReplicaProbe is the background health-poll cadence per replica leg
	// (0 = 250ms); ReplicaLiveness is the probe age beyond which a leg
	// counts as down (0 = 3×probe).
	ReplicaProbe    time.Duration
	ReplicaLiveness time.Duration
	// ReplicaTimeout bounds each remote replica HTTP call (0 = 2s).
	ReplicaTimeout time.Duration
	// FollowerPoll is the WAL tail poll cadence of NewFollower deployments
	// (0 = repl default).
	FollowerPoll time.Duration
}

// replicaClient builds the HTTP client used for replica legs and follower
// tails.
func (c Config) replicaClient() *http.Client {
	t := c.ReplicaTimeout
	if t <= 0 {
		t = 2 * time.Second
	}
	return &http.Client{Timeout: t}
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.Dim <= 0 {
		c.Dim = 2
	}
	if c.K <= 0 {
		c.K = 2
	}
	switch {
	case c.DefaultTimeout == 0:
		c.DefaultTimeout = 2 * time.Second
	case c.DefaultTimeout < 0:
		c.DefaultTimeout = 0
	}
	if c.DegradedNodeBudget <= 0 {
		c.DegradedNodeBudget = 4096
	}
	if c.ReplicaProbe <= 0 {
		c.ReplicaProbe = 250 * time.Millisecond
	}
	if c.ReplicaLiveness <= 0 {
		c.ReplicaLiveness = 3 * c.ReplicaProbe
	}
	return c
}

// Server is the sharded query service. Construct with NewStatic or
// NewDynamic, mount Handler on an http.Server, and Close on shutdown.
type Server struct {
	cfg     Config
	dynamic bool
	shards  []shard
	// locals are the underlying per-process shards, bypassing any replica
	// group wrapping — what the /repl/v1/shard/{i}/query leg endpoint and
	// the shipping surface serve from.
	locals   []shard
	ships    []*repl.Shipper
	follower bool
	part     *partitioner
	adm      *admission
	start    time.Time

	closeOnce sync.Once
	closeErr  error
}

// NewStatic partitions objs and builds one read-only shard per partition:
// a kwsc.Degraded (primary index + inverted-index fallback) behind the
// unified Index surface, in the flat layout when cfg.FlatLayout is set.
// Global ids are positions in objs.
func NewStatic(objs []kwsc.Object, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if len(objs) == 0 {
		return nil, fmt.Errorf("serve: static corpus needs at least one object")
	}
	cfg.Dim = len(objs[0].Point)
	part := newPartitioner(cfg.Partition, cfg.Shards, objs)
	groups, globals := part.split(objs)
	opts := append([]kwsc.Option(nil), cfg.BuildOptions...)
	if cfg.FlatLayout {
		opts = append(opts, kwsc.WithFlatLayout())
	}
	shards := make([]shard, cfg.Shards)
	for i := range shards {
		if len(groups[i]) == 0 {
			shards[i] = &staticShard{}
			continue
		}
		ds, err := kwsc.NewDataset(groups[i])
		if err != nil {
			return nil, fmt.Errorf("serve: shard %d dataset: %w", i, err)
		}
		deg, err := kwsc.NewDegraded(ds, cfg.K, opts...)
		if err != nil {
			return nil, fmt.Errorf("serve: shard %d index: %w", i, err)
		}
		shards[i] = &staticShard{ix: deg, ds: ds, globals: globals[i]}
	}
	return newServer(cfg, false, shards, part), nil
}

// NewDynamic builds one mutable shard per partition. With dir non-empty
// each shard is a DurableORPKW rooted at dir/shard-NNN (created or
// recovered); with dir empty the shards are in-memory DynamicORPKW
// instances. seed objects are bulk-loaded through normal routed inserts —
// but only when every shard starts empty, so reopening a durable deployment
// never double-loads. Global ids are write handles encoding the owning
// shard.
func NewDynamic(dir string, seed []kwsc.Object, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	part := newPartitioner(cfg.Partition, cfg.Shards, seed)
	shards := make([]shard, cfg.Shards)
	ships := make([]*repl.Shipper, 0, cfg.Shards)
	fresh := true
	for i := range shards {
		var ix kwsc.DynamicIndex
		if dir == "" {
			d, err := kwsc.NewDynamicORPKW(cfg.Dim, cfg.K, 0, cfg.BuildOptions...)
			if err != nil {
				return nil, fmt.Errorf("serve: shard %d: %w", i, err)
			}
			ix = d
		} else {
			sub := filepath.Join(dir, fmt.Sprintf("shard-%03d", i))
			if err := os.MkdirAll(sub, 0o755); err != nil {
				return nil, fmt.Errorf("serve: shard %d dir: %w", i, err)
			}
			opts := append([]kwsc.DurableOption(nil), cfg.DurableOptions...)
			if len(cfg.BuildOptions) > 0 {
				opts = append(opts, kwsc.WithDurableBuild(cfg.BuildOptions...))
			}
			d, err := kwsc.OpenDurable(sub, cfg.Dim, cfg.K, opts...)
			if err != nil {
				return nil, fmt.Errorf("serve: shard %d open: %w", i, err)
			}
			if d.LastSeq() > 0 {
				fresh = false
			}
			ix = d
			ships = append(ships, &repl.Shipper{Dir: sub, Dim: cfg.Dim, K: cfg.K, LastSeq: d.LastSeq})
		}
		shards[i] = &dynamicShard{id: i, n: cfg.Shards, ix: ix, now: time.Now}
	}
	s := newServer(cfg, true, shards, part)
	if len(ships) == len(shards) {
		s.ships = ships
	}
	if len(cfg.ReplicaURLs) > 0 {
		// Wrap every shard in a replica group: the local writer plus one
		// remote read leg per follower process.
		client := cfg.replicaClient()
		for i, sh := range shards {
			legs := make([]*remoteLeg, len(cfg.ReplicaURLs))
			for j, u := range cfg.ReplicaURLs {
				legs[j] = &remoteLeg{
					name:     fmt.Sprintf("replica-%d", j),
					baseURL:  fmt.Sprintf("%s/repl/v1/shard/%03d", u, i),
					client:   client,
					liveness: cfg.ReplicaLiveness,
				}
			}
			s.shards[i] = newReplicaGroup(i, sh, legs, cfg.HedgeAfter, cfg.ReplicaProbe)
		}
	}
	if fresh && len(seed) > 0 {
		if err := s.Load(seed); err != nil {
			s.Close()
			return nil, err
		}
	}
	return s, nil
}

func newServer(cfg Config, dynamic bool, shards []shard, part *partitioner) *Server {
	return &Server{
		cfg: cfg, dynamic: dynamic, shards: shards,
		locals: append([]shard(nil), shards...), part: part,
		adm: newAdmission(cfg.Admission), start: time.Now(),
	}
}

// Load bulk-inserts objects through normal write routing (dynamic corpora
// only), acknowledging each through the owning shard's WAL.
func (s *Server) Load(objs []kwsc.Object) error {
	if !s.dynamic {
		return ErrReadOnly
	}
	for i, obj := range objs {
		sh := s.shards[s.part.route(obj)]
		if _, _, err := sh.insert(obj); err != nil {
			return fmt.Errorf("serve: loading object %d: %w", i, err)
		}
	}
	return nil
}

// Dynamic reports whether the corpus accepts writes.
func (s *Server) Dynamic() bool { return s.dynamic }

// K returns the query keyword arity; Dim the corpus dimensionality;
// NumShards the partition count.
func (s *Server) K() int         { return s.cfg.K }
func (s *Server) Dim() int       { return s.cfg.Dim }
func (s *Server) NumShards() int { return len(s.shards) }

// Live returns the number of live objects across all shards.
func (s *Server) Live() int {
	total := 0
	for _, sh := range s.shards {
		total += sh.live()
	}
	return total
}

// Close releases every shard (closing durable WALs). Idempotent.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		for _, sh := range s.shards {
			if err := sh.close(); err != nil && s.closeErr == nil {
				s.closeErr = err
			}
		}
	})
	return s.closeErr
}

var (
	shardOutcomes = map[string]*obs.Counter{}
	shardOutcomeM sync.Mutex
)

func countShardOutcome(outcome string) {
	shardOutcomeM.Lock()
	c, ok := shardOutcomes[outcome]
	if !ok {
		c = obs.Default().Counter(fmt.Sprintf("kwscd_shard_outcomes_total{outcome=%q}", outcome))
		shardOutcomes[outcome] = c
	}
	shardOutcomeM.Unlock()
	c.Inc()
}

// scatter fans the query out to every shard concurrently and gathers all
// replies. All shards share the caller's absolute deadline (resolved once),
// so a straggler cannot extend the query's wall-clock budget.
func (s *Server) scatter(req *kwsc.QueryRequest, q *kwsc.Rect, exact kwsc.Region, ws []kwsc.Keyword, opts kwsc.QueryOpts, staleness time.Duration) []legResult {
	replies := make([]legResult, len(s.shards))
	if len(s.shards) == 1 {
		replies[0] = s.shards[0].collect(req, q, exact, ws, opts, staleness)
		return replies
	}
	var wg sync.WaitGroup
	for i, sh := range s.shards {
		wg.Add(1)
		go func(i int, sh shard) {
			defer wg.Done()
			replies[i] = sh.collect(req, q, exact, ws, opts, staleness)
		}(i, sh)
	}
	wg.Wait()
	return replies
}

// outcomeOf classifies a scatter-leg error the way obs outcomes do.
func outcomeOf(err error) string {
	var pe *kwsc.PanicError
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, kwsc.ErrDeadline):
		return "deadline"
	case errors.Is(err, kwsc.ErrBudget):
		return "budget"
	case errors.Is(err, kwsc.ErrCanceled):
		return "canceled"
	case errors.As(err, &pe):
		return "panic"
	default:
		return "error"
	}
}

// gather merges the scatter replies into one response. Policy-stopped
// shards contribute their prefix (the union stays prefix-correct);
// panicked or failed shards contribute nothing and mark the result
// truncated. Merging is deterministic: ascending global ids, limit cut
// applied to the merged sequence.
func (s *Server) gather(replies []legResult, limit int) (*kwsc.QueryResponse, error) {
	resp := &kwsc.QueryResponse{Shards: make([]kwsc.ShardOutcome, len(replies))}
	lists := make([][]int64, len(replies))
	total := 0
	for i, rep := range replies {
		out := outcomeOf(rep.err)
		if out == "error" && errors.Is(rep.err, kwsc.ErrInvalidQuery) {
			return nil, rep.err
		}
		countShardOutcome(out)
		if out == "panic" || out == "error" {
			rep.ids = nil
			resp.Truncated = true
		}
		if rep.err != nil || rep.st.Truncated {
			resp.Truncated = true
		}
		if rep.st.Fallback {
			resp.Degraded = true
		}
		if rep.stale {
			resp.Stale = true
		}
		lists[i] = rep.ids
		total += len(rep.ids)
		resp.Shards[i] = kwsc.ShardOutcome{
			Shard: i, Reported: len(rep.ids), Ops: rep.st.Ops,
			Seq: rep.seq, Outcome: out, FellBack: rep.st.Fallback,
			Replica: rep.replica, StalenessMs: rep.stalenessMs, Stale: rep.stale,
		}
	}
	resp.IDs = mergeSorted(lists, limit)
	resp.Count = len(resp.IDs)
	if limit > 0 && total > limit {
		resp.Truncated = true
	}
	if resp.IDs == nil {
		resp.IDs = []int64{}
	}
	return resp, nil
}

// Query answers one query request in-process (the HTTP handler, tests, and
// embedders share this path). Admission control is the caller's concern;
// degraded selects the degraded execution mode.
func (s *Server) Query(req *kwsc.QueryRequest, degraded bool) (*kwsc.QueryResponse, error) {
	if err := req.Validate(s.cfg.Dim, s.cfg.K); err != nil {
		return nil, err
	}
	opts := req.Opts(s.cfg.DefaultTimeout)
	if degraded {
		if opts.Policy.NodeBudget == 0 || opts.Policy.NodeBudget > s.cfg.DegradedNodeBudget {
			opts.Policy.NodeBudget = s.cfg.DegradedNodeBudget
		}
	}
	// Resolve the relative timeout to one absolute deadline here so every
	// shard races the same clock instead of restarting the budget.
	if opts.Policy.Timeout > 0 && opts.Policy.Deadline.IsZero() {
		opts.Policy.Deadline = time.Now().Add(opts.Policy.Timeout)
		opts.Policy.Timeout = 0
	}
	start := time.Now()
	replies := s.scatter(req, req.BoundingRect(s.cfg.Dim), req.ExactRegion(), req.Keywords, opts,
		time.Duration(req.MaxStalenessMs)*time.Millisecond)
	resp, err := s.gather(replies, req.Limit)
	if err != nil {
		return nil, err
	}
	resp.Degraded = resp.Degraded || degraded
	resp.ElapsedUs = time.Since(start).Microseconds()
	return resp, nil
}

// Write applies one write request in-process. The returned response is
// acknowledged by the owning shard's WAL (per its fsync policy) before this
// returns.
func (s *Server) Write(req *kwsc.WriteRequest) (*kwsc.WriteResponse, error) {
	if !s.dynamic {
		return nil, ErrReadOnly
	}
	if err := req.Validate(s.cfg.Dim); err != nil {
		return nil, err
	}
	switch req.Op {
	case kwsc.OpInsert:
		obj := req.Object()
		si := s.part.route(obj)
		handle, seq, err := s.shards[si].insert(obj)
		if err != nil {
			return nil, err
		}
		return &kwsc.WriteResponse{Handle: handle, Seq: seq, Shard: si}, nil
	default: // OpDelete; Validate rejected everything else
		local, si := splitHandle(req.Handle, len(s.shards))
		if si < 0 || si >= len(s.shards) {
			return nil, fmt.Errorf("%w: handle %d maps outside the shard set", kwsc.ErrInvalidQuery, req.Handle)
		}
		ok, seq, err := s.shards[si].remove(local)
		if err != nil {
			return nil, err
		}
		return &kwsc.WriteResponse{Deleted: ok, Seq: seq, Shard: si}, nil
	}
}
