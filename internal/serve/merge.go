package serve

// mergeSorted merges per-shard ascending id lists into one ascending list,
// keeping at most limit ids (0 = all). Shards own disjoint id spaces, so
// there is nothing to de-duplicate; the merge is a deterministic function
// of its inputs — the same per-shard partial results always produce the
// same response, no matter which shard answered first.
//
// Prefix-correctness composes: each input is a subset of its shard's true
// answer, the union of subsets is a subset of the union, and the limit cut
// keeps the limit smallest ids of that union — still a subset of the true
// answer.
func mergeSorted(lists [][]int64, limit int) []int64 {
	total := 0
	nonEmpty := 0
	for _, l := range lists {
		total += len(l)
		if len(l) > 0 {
			nonEmpty++
		}
	}
	if limit > 0 && limit < total {
		total = limit
	}
	out := make([]int64, 0, total)
	if nonEmpty <= 1 {
		for _, l := range lists {
			out = append(out, l...)
		}
		if limit > 0 && len(out) > limit {
			out = out[:limit]
		}
		return out
	}
	heads := make([][]int64, 0, nonEmpty)
	for _, l := range lists {
		if len(l) > 0 {
			heads = append(heads, l)
		}
	}
	for len(heads) > 0 {
		min := 0
		for i := 1; i < len(heads); i++ {
			if heads[i][0] < heads[min][0] {
				min = i
			}
		}
		out = append(out, heads[min][0])
		if limit > 0 && len(out) >= limit {
			return out
		}
		if heads[min] = heads[min][1:]; len(heads[min]) == 0 {
			heads[min] = heads[len(heads)-1]
			heads = heads[:len(heads)-1]
		}
	}
	return out
}
