package serve

import (
	"testing"
	"time"
)

// fakeClock is an injectable time source for bucket refill tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time                   { return c.t }
func (c *fakeClock) advance(d time.Duration)          { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock                        { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }
func withClock(a *admission, c *fakeClock) *admission { a.now = c.now; return a }

func mustDecision(t *testing.T, a *admission, client string, want Decision) func() {
	t.Helper()
	got, release := a.acquire(client)
	if got != want {
		t.Fatalf("acquire(%q) = %v, want %v (inflight=%d)", client, got, want, a.Inflight())
	}
	return release
}

func TestAdmissionUnlimitedByDefault(t *testing.T) {
	a := newAdmission(AdmissionConfig{})
	var releases []func()
	for i := 0; i < 100; i++ {
		releases = append(releases, mustDecision(t, a, "anyone", Admit))
	}
	for _, r := range releases {
		r()
	}
	if got := a.Inflight(); got != 0 {
		t.Fatalf("inflight after release = %d, want 0", got)
	}
}

func TestAdmissionTokenBucket(t *testing.T) {
	clk := newFakeClock()
	a := withClock(newAdmission(AdmissionConfig{ClientRate: 2, ClientBurst: 3}), clk)

	// Burst capacity admits exactly 3, then quota sheds.
	for i := 0; i < 3; i++ {
		mustDecision(t, a, "alice", Admit)()
	}
	mustDecision(t, a, "alice", ShedQuota)()

	// Buckets are per client: bob is unaffected by alice's exhaustion.
	mustDecision(t, a, "bob", Admit)()

	// Refill at 2/s: after 500ms exactly one token is back.
	clk.advance(500 * time.Millisecond)
	mustDecision(t, a, "alice", Admit)()
	mustDecision(t, a, "alice", ShedQuota)()

	// Refill caps at burst: a long idle period grants 3, not rate*dt.
	clk.advance(time.Hour)
	for i := 0; i < 3; i++ {
		mustDecision(t, a, "alice", Admit)()
	}
	mustDecision(t, a, "alice", ShedQuota)()
}

func TestAdmissionInflightBands(t *testing.T) {
	a := newAdmission(AdmissionConfig{MaxInflight: 4, SoftInflight: 2})

	// Under the soft threshold: full service.
	r1 := mustDecision(t, a, "", Admit)
	r2 := mustDecision(t, a, "", Admit)
	// In the degraded band (soft < inflight <= hard).
	r3 := mustDecision(t, a, "", AdmitDegraded)
	r4 := mustDecision(t, a, "", AdmitDegraded)
	// Over the hard cap: shed, and the failed acquire must not leak a slot.
	mustDecision(t, a, "", ShedOverload)()
	if got := a.Inflight(); got != 4 {
		t.Fatalf("inflight after shed = %d, want 4", got)
	}

	// Releasing drops back through the bands: at 3 in flight the next
	// acquire lands at 4 (degraded band), at 1 in flight it lands at 2
	// (full service).
	r4()
	mustDecision(t, a, "", AdmitDegraded)()
	r3()
	r2()
	mustDecision(t, a, "", Admit)()
	r1()

	if got := a.Inflight(); got != 0 {
		t.Fatalf("inflight = %d, want 0", got)
	}
}

func TestAdmissionReleaseIdempotent(t *testing.T) {
	a := newAdmission(AdmissionConfig{MaxInflight: 2})
	release := mustDecision(t, a, "", Admit)
	release()
	release() // double release must not underflow the window
	if got := a.Inflight(); got != 0 {
		t.Fatalf("inflight after double release = %d, want 0", got)
	}
}
