package serve

import (
	"math/rand"
	"slices"
	"testing"
)

func TestMergeSortedBasic(t *testing.T) {
	cases := []struct {
		name  string
		lists [][]int64
		limit int
		want  []int64
	}{
		{"empty", nil, 0, []int64{}},
		{"all-empty", [][]int64{{}, nil, {}}, 0, []int64{}},
		{"single", [][]int64{{1, 3, 5}}, 0, []int64{1, 3, 5}},
		{"single-limit", [][]int64{{}, {1, 3, 5}}, 2, []int64{1, 3}},
		{"two", [][]int64{{1, 4}, {2, 3}}, 0, []int64{1, 2, 3, 4}},
		{"three", [][]int64{{2, 9}, {1, 8}, {5}}, 0, []int64{1, 2, 5, 8, 9}},
		{"limit-cuts", [][]int64{{2, 9}, {1, 8}, {5}}, 3, []int64{1, 2, 5}},
		{"limit-over", [][]int64{{2}, {1}}, 10, []int64{1, 2}},
	}
	for _, tc := range cases {
		got := mergeSorted(tc.lists, tc.limit)
		if got == nil {
			got = []int64{}
		}
		if !slices.Equal(got, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestMergeSortedRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 200; iter++ {
		n := 1 + rng.Intn(6)
		lists := make([][]int64, n)
		var all []int64
		used := map[int64]bool{}
		for i := range lists {
			m := rng.Intn(8)
			for j := 0; j < m; j++ {
				// Disjoint ids, matching the shard invariant.
				v := int64(rng.Intn(1000))
				if used[v] {
					continue
				}
				used[v] = true
				lists[i] = append(lists[i], v)
				all = append(all, v)
			}
			slices.Sort(lists[i])
		}
		slices.Sort(all)
		limit := rng.Intn(len(all) + 2)
		want := all
		if limit > 0 && limit < len(want) {
			want = want[:limit]
		}
		got := mergeSorted(lists, limit)
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !slices.Equal(got, want) {
			t.Fatalf("iter %d: merge(%v, limit=%d) = %v, want %v", iter, lists, limit, got, want)
		}
	}
}
