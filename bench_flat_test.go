package kwsc

// Flat-layout benchmark series (DESIGN.md Section 12): the E1/E2 conjunctive
// workloads re-run with WithFlatLayout, plus a bytes-resident series that
// reports the live heap each built index retains. The pointer-layout
// counterparts live in bench_test.go; cmd/benchsave parses the custom
// "bytes-resident" metric into the snapshot's bytes_resident field so the
// before/after pair can be diffed across commits.
//
// The N=1M tier is opt-in via KWSC_BENCH_1M=1 (`make bench-1m`): building a
// million-object index takes minutes and has no place in the default
// tier-1 bench sweep.

import (
	"fmt"
	"os"
	"runtime"
	"testing"
)

// residentAfter runs build between two GC-settled heap readings and returns
// the built value plus the live bytes it retains. The forced collections
// make HeapAlloc a resident-set measure rather than an allocation counter:
// everything the build churned through and dropped has been reclaimed by the
// second reading, so the delta is (up to unrelated background noise) the
// index itself.
func residentAfter[T any](build func() T) (T, int64) {
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	ix := build()
	runtime.GC()
	runtime.ReadMemStats(&m1)
	resident := int64(m1.HeapAlloc) - int64(m0.HeapAlloc)
	if resident < 0 {
		resident = 0
	}
	return ix, resident
}

// benchE1Collect is the shared body of the E1 pointer/flat series: build at
// (n, k) with the given options, report resident bytes, then measure the
// planted conjunctive query.
func benchE1Collect(b *testing.B, n, k int, opts ...Option) {
	ds, kws, region := plantedFixture(1, n, 2, k, 64, n/8)
	ix, resident := residentAfter(func() *ORPKW {
		ix, err := NewORPKW(ds, k, opts...)
		if err != nil {
			b.Fatal(err)
		}
		return ix
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, _, err := ix.Collect(region, kws, QueryOpts{})
		if err != nil {
			b.Fatal(err)
		}
		if len(got) != 64 {
			b.Fatalf("OUT drifted: %d", len(got))
		}
	}
	// After the loop: ResetTimer clears extra metrics (go1.24), so the
	// report must come last.
	b.ReportMetric(float64(resident), "bytes-resident")
}

// BenchmarkE1ORPKW2DFlat is BenchmarkE1ORPKW2D with the flat layout. The
// shared BenchmarkE1ORPKW2D name prefix puts it in the tier-1 bench family,
// and identical sub-names make the ptr/flat ns/op comparison a same-suffix
// diff between the two families.
func BenchmarkE1ORPKW2DFlat(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 14, 1 << 16} {
		for _, k := range []int{2, 3} {
			b.Run(fmt.Sprintf("N=%d/k=%d", n, k), func(b *testing.B) {
				benchE1Collect(b, n, k, WithFlatLayout())
			})
		}
	}
}

// BenchmarkE1ORPKW2DResident is the pointer-layout bytes-resident
// counterpart at the benchmark tier sizes; the ns/op numbers come from
// BenchmarkE1ORPKW2D, which this deliberately leaves untouched so its series
// stays comparable against committed baselines.
func BenchmarkE1ORPKW2DResident(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 14, 1 << 16} {
		for _, k := range []int{2, 3} {
			b.Run(fmt.Sprintf("N=%d/k=%d", n, k), func(b *testing.B) {
				benchE1Collect(b, n, k)
			})
		}
	}
}

// BenchmarkE2ORPKW3DFlat is BenchmarkE2ORPKW3D with the flat layout: the
// dimension-reduction tree's secondary frameworks all flatten, exercising
// the zigzag codec on non-id-sorted materialized lists.
func BenchmarkE2ORPKW3DFlat(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 13} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			ds, kws, region := plantedFixture(4, n, 3, 2, 64, n/8)
			ix, resident := residentAfter(func() *ORPKWHigh {
				ix, err := NewORPKWHigh(ds, 2, WithFlatLayout())
				if err != nil {
					b.Fatal(err)
				}
				return ix
			})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := ix.Collect(region, kws, QueryOpts{}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(resident), "bytes-resident")
		})
	}
}

// --- N=1M tier (opt-in: KWSC_BENCH_1M=1, `make bench-1m`) --------------------

// BenchmarkE1ORPKW2D1M runs the E1 conjunctive query at a million objects in
// both layouts. At this size the pointer tree's working set is far past L3,
// so the flat layout's contiguous arrays and block-decoded lists show their
// largest relative gain; the bytes-resident pair quantifies the compression.
func BenchmarkE1ORPKW2D1M(b *testing.B) {
	if os.Getenv("KWSC_BENCH_1M") == "" {
		b.Skip("set KWSC_BENCH_1M=1 (or run `make bench-1m`) for the N=1M tier")
	}
	const n = 1 << 20
	for _, layout := range []struct {
		name string
		opts []Option
	}{
		{"ptr", nil},
		{"flat", []Option{WithFlatLayout()}},
	} {
		b.Run(fmt.Sprintf("N=%d/k=2/%s", n, layout.name), func(b *testing.B) {
			benchE1Collect(b, n, 2, layout.opts...)
		})
	}
}
