# Convenience targets; everything is plain `go` underneath.

GO ?= go
GOFMT ?= gofmt

.PHONY: all build test race vet vet-deprecated vet-pager cover bench bench-1m bench-save bench-compare bench-coldstart check crash fuzz-smoke serve-smoke replica-smoke bench-serve repro repro-quick examples clean

all: build test

# The full pre-merge gate: vet + formatting + deprecation hygiene, the
# complete test suite, the race detector over the concurrent paths (parallel
# builds, QueryBatch workers, shared-index readers, dynamic-index writers vs
# lock-free readers, the linearizability harness, the metrics registry, the
# sharded query service) including the failpoint/resilience tests, the
# crash-injection suite, a short fuzz smoke over the binary decoders, and an
# end-to-end serving smoke (kwscd booted, kwsload burst, clean shutdown),
# and a replication smoke (primary + two followers, bounded-staleness reads
# surviving a killed follower).
check: vet
	$(GO) test ./...
	$(MAKE) race
	$(MAKE) crash
	$(MAKE) fuzz-smoke
	$(MAKE) serve-smoke
	$(MAKE) replica-smoke

# Crash-injection suite under the race detector: a panic is armed at every
# durability failpoint (mid-append, pre-fsync, mid-checkpoint, pre-rename,
# mid-replay), the "process" dies there, and recovery must reproduce exactly
# the acknowledged prefix (verified against an inverted-index replay).
crash:
	$(GO) test -race -run 'Crash' ./internal/wal/

# Short native-fuzz smoke over the untrusted-input decoders: the dataset
# codec, the checkpoint codec, WAL recovery, and the delta-block codec behind
# the flat layout's packed lists. Each target runs briefly; use
# `go test -fuzz <name> -fuzztime 5m ./internal/...` for a real session.
FUZZ_TIME ?= 5s
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzReadDataset$$' -fuzztime $(FUZZ_TIME) ./internal/codec/
	$(GO) test -run '^$$' -fuzz '^FuzzReadSnapshot$$' -fuzztime $(FUZZ_TIME) ./internal/codec/
	$(GO) test -run '^$$' -fuzz '^FuzzReadPagedSnapshot$$' -fuzztime $(FUZZ_TIME) ./internal/codec/
	$(GO) test -run '^$$' -fuzz '^FuzzReplayWAL$$' -fuzztime $(FUZZ_TIME) ./internal/wal/
	$(GO) test -run '^$$' -fuzz '^FuzzPackDeltas$$' -fuzztime $(FUZZ_TIME) ./internal/bitpack/

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

# Static checks: go vet plus a gofmt cleanliness gate (fails listing any
# unformatted file) plus the deprecation gate.
vet:
	$(GO) vet ./...
	@unformatted=$$($(GOFMT) -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(MAKE) vet-deprecated

# Deprecation hygiene: the PR 3 `New*With(ds, k, BuildOpts{...})` wrappers
# stay exported for compatibility (and keep their unit coverage), but no
# example, command, or doc snippet may use them — new code takes variadic
# Option values. The grep matches call sites of the deprecated facade
# constructors; the facade's own definitions and the internal Build*With
# implementations they delegate to are exempt.
vet-deprecated:
	@hits=$$(grep -rnE 'kwsc\.New[A-Za-z]+With\(|[^.]New(ORPKW|ORPKWHigh|RRKW|SRPKW|LinfNN|L2NN)With\(' \
		cmd/ examples/ README.md DESIGN.md EXPERIMENTS.md 2>/dev/null); \
	if [ -n "$$hits" ]; then \
		echo "deprecated New*With constructors in migrated surfaces:"; \
		echo "$$hits"; exit 1; \
	fi
	$(MAKE) vet-pager

# Pager hygiene: checkpoint files are refcounted through internal/pager so
# that pruning can retire a file that a live index is still mapping. Any
# code that reads or unlinks a checkpoint path directly (os.ReadFile /
# os.Open / os.Remove on a checkpointPath) bypasses that protocol and can
# yank bytes out from under a serving index — the grep keeps such call
# sites from creeping back in. WAL segment files are exempt: they are
# replayed once at recovery, never mapped.
vet-pager:
	@hits=$$(grep -rnE 'os\.(ReadFile|Open|Remove|RemoveAll)\( *checkpointPath' \
		--include='*.go' internal/ cmd/ . 2>/dev/null; \
		grep -rnE 'os\.(ReadFile|Open)\([^)]*\.ckpt' --include='*.go' \
		internal/ cmd/ examples/ 2>/dev/null | grep -v '_test.go'); \
	if [ -n "$$hits" ]; then \
		echo "checkpoint bytes bypassing internal/pager:"; \
		echo "$$hits"; exit 1; \
	fi

# Race coverage over the concurrent paths: parallel builds, QueryBatch and
# shared-index Collect calls, dynamic-index churn against lock-free readers
# and pinned snapshots, the WAL linearizability harness, and the metrics
# registry/tracer/slow-log all run under the detector.
race:
	$(GO) vet ./...
	$(GO) test -race ./internal/core/ ./internal/spart/ ./internal/obs/ ./internal/wal/ ./internal/repl/ ./internal/serve/ ./internal/pager/ ./internal/flatio/ .

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem .

# The N=1M tier: the E1 conjunctive query at a million objects in both
# layouts, with the bytes-resident series. Opt-in because the two builds
# take minutes; 20 timed iterations is plenty once the index is up.
bench-1m:
	KWSC_BENCH_1M=1 $(GO) test -run '^$$' -bench '^BenchmarkE1ORPKW2D1M$$' \
		-benchmem -benchtime=20x -timeout 60m .

# The tier-1 bench families snapshotted by bench-save / checked by
# bench-compare; the MetricsOn/Off pair keeps the observability overhead and
# the zero-alloc metrics-on property in the perf trajectory. The
# BenchmarkE1ORPKW2D / BenchmarkE2ORPKW3D prefixes deliberately also match
# the Flat and Resident variants (bench_flat_test.go), so the ptr/flat ns/op
# and bytes-resident pairs land in every snapshot; the 1M tier matches too
# but self-skips unless KWSC_BENCH_1M is set (see bench-1m).
BENCH_TIME ?= 200x
BENCH_REGEX = ^(BenchmarkE1ORPKW2D|BenchmarkE2ORPKW3D|BenchmarkORPKW2DCollect|BenchmarkORPKW2DCollectInto|BenchmarkORPKW2DCollectIntoMetricsOn|BenchmarkORPKW2DCollectIntoMetricsOff|BenchmarkBuildORPKW|BenchmarkBuildLCKW|BenchmarkWALAppend|BenchmarkRecoveryReplay|BenchmarkConcurrentReadDuringChurn)

# Snapshot the tier-1 bench families as BENCH_<date>.json so later changes
# have a perf trajectory to compare against. The snapshot embeds the metrics
# registry of the run ({records, metrics}). Each benchmark runs BENCH_COUNT
# times and benchsave keeps the per-name minimum — the noise-robust statistic
# on shared/virtualized hardware, where single 200-iteration samples swing
# well past the compare tolerance on identical binaries.
BENCH_COUNT ?= 3
bench-save:
	$(GO) test -run '^$$' -bench '$(BENCH_REGEX)' -count=$(BENCH_COUNT) \
		-benchmem -benchtime=$(BENCH_TIME) . | $(GO) run ./cmd/benchsave -out BENCH_$(shell date +%Y-%m-%d).json

# Compare a fresh run of the tier-1 bench families against the committed
# baseline; fails on >2x ns/op drift (a catastrophic-regression tripwire —
# shared hardware swings microsecond-scale and fsync-bound benches past 1.8x
# on identical binaries even at min-of-3) or any allocs/op increase beyond
# 0.1% (the zero-alloc query paths are a hard property, not a number to
# drift — including with the metrics registry enabled).
BENCH_BASELINE ?= BENCH_2026-08-08.json
bench-compare:
	$(GO) test -run '^$$' -bench '$(BENCH_REGEX)' -count=$(BENCH_COUNT) \
		-benchmem -benchtime=$(BENCH_TIME) . | $(GO) run ./cmd/benchsave -compare $(BENCH_BASELINE)

# The out-of-core cold-start series (DESIGN.md §15, EXPERIMENTS.md):
# process start to first query answer for a saved paged flat image (mmap
# and pread), the rebuild-from-scratch baseline, and the durable directory
# in both recovery modes — plus the capped-pool bytes-resident gate. Each
# timed iteration is a full open/probe/close, so ns/op IS the cold start;
# min-of-3 as in bench-save. KWSC_BENCH_1M=1 adds the N=1M mmap tier.
BENCH_COLDSTART_REGEX = ^(BenchmarkColdStartPagedORPKW|BenchmarkColdStartRebuildORPKW|BenchmarkColdStartDurable|BenchmarkPagedResidentCapped)
bench-coldstart:
	$(GO) test -run '^$$' -bench '$(BENCH_COLDSTART_REGEX)' -count=$(BENCH_COUNT) \
		-benchmem -benchtime=5x -timeout 60m . | $(GO) run ./cmd/benchsave -out BENCH_coldstart_$(shell date +%Y-%m-%d).json

# End-to-end serving smoke: boot kwscd on a loopback port, drive a short
# kwsload burst (which exits non-zero on zero goodput), then SIGTERM and
# require a clean shutdown. Pure kwscd + kwsload + shell — no curl.
SERVE_SMOKE_ADDR ?= 127.0.0.1:18091
serve-smoke:
	@tmp=$$(mktemp -d); status=0; \
	$(GO) build -o $$tmp/kwscd ./cmd/kwscd || exit 1; \
	$(GO) build -o $$tmp/kwsload ./cmd/kwsload || exit 1; \
	$$tmp/kwscd -addr $(SERVE_SMOKE_ADDR) -mode static -shards 2 -n 10000 \
		-max-inflight 32 -soft-inflight 8 >$$tmp/kwscd.log 2>&1 & pid=$$!; \
	$$tmp/kwsload -addr $(SERVE_SMOKE_ADDR) -wait-ready 15s \
		-sweep 1,4 -duration 1s || status=1; \
	kill -TERM $$pid && wait $$pid || status=1; \
	grep -q "clean shutdown" $$tmp/kwscd.log || { \
		echo "kwscd did not shut down cleanly:"; cat $$tmp/kwscd.log; status=1; }; \
	rm -rf $$tmp; exit $$status

# Replication smoke (DESIGN.md §16): a durable primary configured with two
# follower replica URLs, two follower kwscd processes bootstrapping from its
# checkpoints and tailing its WALs, a bounded-staleness kwsload burst served
# with the group healthy, then one follower killed hard (SIGKILL) and a
# second burst that must keep succeeding — the probes declare the dead leg,
# reads fail over, and kwsload's zero-goodput exit code is the assertion.
# Finally both surviving processes must shut down cleanly.
REPLICA_SMOKE_ADDR ?= 127.0.0.1:18094
REPLICA_SMOKE_F1 ?= 127.0.0.1:18095
REPLICA_SMOKE_F2 ?= 127.0.0.1:18096
replica-smoke:
	@tmp=$$(mktemp -d); status=0; \
	$(GO) build -o $$tmp/kwscd ./cmd/kwscd || exit 1; \
	$(GO) build -o $$tmp/kwsload ./cmd/kwsload || exit 1; \
	$$tmp/kwscd -addr $(REPLICA_SMOKE_ADDR) -mode dynamic -dir $$tmp/primary \
		-shards 2 -n 5000 -replica-probe 50ms \
		-replicas http://$(REPLICA_SMOKE_F1),http://$(REPLICA_SMOKE_F2) \
		>$$tmp/primary.log 2>&1 & ppid=$$!; \
	$$tmp/kwscd -addr $(REPLICA_SMOKE_F1) -dir $$tmp/f1 -follow-poll 20ms \
		-follow http://$(REPLICA_SMOKE_ADDR) >$$tmp/f1.log 2>&1 & f1pid=$$!; \
	$$tmp/kwscd -addr $(REPLICA_SMOKE_F2) -dir $$tmp/f2 -follow-poll 20ms \
		-follow http://$(REPLICA_SMOKE_ADDR) >$$tmp/f2.log 2>&1 & f2pid=$$!; \
	$$tmp/kwsload -addr $(REPLICA_SMOKE_ADDR) -wait-ready 20s \
		-sweep 2 -duration 1s -max-staleness 2000 || status=1; \
	kill -KILL $$f1pid; \
	sleep 1; \
	$$tmp/kwsload -addr $(REPLICA_SMOKE_ADDR) -sweep 2 -duration 1s \
		-max-staleness 2000 || { echo "reads failed with one replica down"; status=1; }; \
	kill -TERM $$f2pid && wait $$f2pid || status=1; \
	kill -TERM $$ppid && wait $$ppid || status=1; \
	grep -q "clean shutdown" $$tmp/primary.log || { \
		echo "primary did not shut down cleanly:"; cat $$tmp/primary.log; status=1; }; \
	grep -q "clean shutdown" $$tmp/f2.log || { \
		echo "follower 2 did not shut down cleanly:"; cat $$tmp/f2.log; status=1; }; \
	rm -rf $$tmp; exit $$status

# The serving goodput curve of EXPERIMENTS.md: a larger corpus with
# admission limits sized so the top of the sweep overloads the server, the
# results written as the serve section of a benchfmt snapshot.
BENCH_SERVE_OUT ?= BENCH_serve_$(shell date +%Y-%m-%d).json
bench-serve:
	@tmp=$$(mktemp -d); status=0; \
	$(GO) build -o $$tmp/kwscd ./cmd/kwscd || exit 1; \
	$(GO) build -o $$tmp/kwsload ./cmd/kwsload || exit 1; \
	$$tmp/kwscd -addr $(SERVE_SMOKE_ADDR) -mode static -shards 2 -n 50000 \
		-max-inflight 12 -soft-inflight 6 \
		>$$tmp/kwscd.log 2>&1 & pid=$$!; \
	$$tmp/kwsload -addr $(SERVE_SMOKE_ADDR) -wait-ready 30s \
		-sweep 1,2,4,8,16,32 -duration 3s -out $(BENCH_SERVE_OUT) || status=1; \
	kill -TERM $$pid && wait $$pid || status=1; \
	rm -rf $$tmp; exit $$status

# Regenerate every experiment of EXPERIMENTS.md (full sweeps; minutes).
repro:
	$(GO) run ./cmd/benchkw

repro-quick:
	$(GO) run ./cmd/benchkw -quick

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/hotels
	$(GO) run ./examples/temporal
	$(GO) run ./examples/geosearch
	$(GO) run ./examples/inventory
	$(GO) run ./examples/served

clean:
	$(GO) clean ./...
