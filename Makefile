# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test race cover bench repro repro-quick examples clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem .

# Regenerate every experiment of EXPERIMENTS.md (full sweeps; minutes).
repro:
	$(GO) run ./cmd/benchkw

repro-quick:
	$(GO) run ./cmd/benchkw -quick

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/hotels
	$(GO) run ./examples/temporal
	$(GO) run ./examples/geosearch
	$(GO) run ./examples/inventory

clean:
	$(GO) clean ./...
