# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test race cover bench bench-save bench-compare check repro repro-quick examples clean

all: build test

# The full pre-merge gate: vet, the complete test suite, and the race
# detector over the concurrent paths (parallel builds, QueryBatch workers,
# shared-index readers) including the failpoint/resilience tests.
check:
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race ./internal/core/ ./internal/spart/

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race coverage over the concurrent paths: parallel builds, QueryBatch and
# shared-index Collect calls all run under the detector.
race:
	$(GO) vet ./...
	$(GO) test -race ./internal/core/ ./internal/spart/

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem .

# Snapshot the tier-1 bench families as BENCH_<date>.json so later changes
# have a perf trajectory to compare against.
bench-save:
	$(GO) test -run '^$$' -bench '^(BenchmarkE1ORPKW2D|BenchmarkE2ORPKW3D|BenchmarkORPKW2DCollect|BenchmarkORPKW2DCollectInto|BenchmarkBuildORPKW|BenchmarkBuildLCKW)' \
		-benchmem -benchtime=20x . | $(GO) run ./cmd/benchsave -out BENCH_$(shell date +%Y-%m-%d).json

# Compare a fresh run of the tier-1 bench families against the committed
# baseline; fails on >1.5x ns/op drift or ANY allocs/op increase (the
# zero-alloc query paths are a hard property, not a number to drift).
BENCH_BASELINE ?= BENCH_2026-08-06.json
bench-compare:
	$(GO) test -run '^$$' -bench '^(BenchmarkE1ORPKW2D|BenchmarkE2ORPKW3D|BenchmarkORPKW2DCollect|BenchmarkORPKW2DCollectInto|BenchmarkBuildORPKW|BenchmarkBuildLCKW)' \
		-benchmem -benchtime=20x . | $(GO) run ./cmd/benchsave -compare $(BENCH_BASELINE)

# Regenerate every experiment of EXPERIMENTS.md (full sweeps; minutes).
repro:
	$(GO) run ./cmd/benchkw

repro-quick:
	$(GO) run ./cmd/benchkw -quick

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/hotels
	$(GO) run ./examples/temporal
	$(GO) run ./examples/geosearch
	$(GO) run ./examples/inventory

clean:
	$(GO) clean ./...
