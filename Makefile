# Convenience targets; everything is plain `go` underneath.

GO ?= go
GOFMT ?= gofmt

.PHONY: all build test race vet cover bench bench-save bench-compare check repro repro-quick examples clean

all: build test

# The full pre-merge gate: vet + formatting, the complete test suite, and the
# race detector over the concurrent paths (parallel builds, QueryBatch
# workers, shared-index readers, the metrics registry) including the
# failpoint/resilience tests.
check: vet
	$(GO) test ./...
	$(GO) test -race ./internal/core/ ./internal/spart/ ./internal/obs/

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

# Static checks: go vet plus a gofmt cleanliness gate (fails listing any
# unformatted file).
vet:
	$(GO) vet ./...
	@unformatted=$$($(GOFMT) -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

# Race coverage over the concurrent paths: parallel builds, QueryBatch and
# shared-index Collect calls, and the metrics registry/tracer/slow-log all
# run under the detector.
race:
	$(GO) vet ./...
	$(GO) test -race ./internal/core/ ./internal/spart/ ./internal/obs/

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem .

# The tier-1 bench families snapshotted by bench-save / checked by
# bench-compare; the MetricsOn/Off pair keeps the observability overhead and
# the zero-alloc metrics-on property in the perf trajectory.
BENCH_TIME ?= 200x
BENCH_REGEX = ^(BenchmarkE1ORPKW2D|BenchmarkE2ORPKW3D|BenchmarkORPKW2DCollect|BenchmarkORPKW2DCollectInto|BenchmarkORPKW2DCollectIntoMetricsOn|BenchmarkORPKW2DCollectIntoMetricsOff|BenchmarkBuildORPKW|BenchmarkBuildLCKW)

# Snapshot the tier-1 bench families as BENCH_<date>.json so later changes
# have a perf trajectory to compare against. The snapshot embeds the metrics
# registry of the run ({records, metrics}).
bench-save:
	$(GO) test -run '^$$' -bench '$(BENCH_REGEX)' \
		-benchmem -benchtime=$(BENCH_TIME) . | $(GO) run ./cmd/benchsave -out BENCH_$(shell date +%Y-%m-%d).json

# Compare a fresh run of the tier-1 bench families against the committed
# baseline; fails on >1.5x ns/op drift or ANY allocs/op increase (the
# zero-alloc query paths are a hard property, not a number to drift —
# including with the metrics registry enabled).
BENCH_BASELINE ?= BENCH_2026-08-06.json
bench-compare:
	$(GO) test -run '^$$' -bench '$(BENCH_REGEX)' \
		-benchmem -benchtime=$(BENCH_TIME) . | $(GO) run ./cmd/benchsave -compare $(BENCH_BASELINE)

# Regenerate every experiment of EXPERIMENTS.md (full sweeps; minutes).
repro:
	$(GO) run ./cmd/benchkw

repro-quick:
	$(GO) run ./cmd/benchkw -quick

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/hotels
	$(GO) run ./examples/temporal
	$(GO) run ./examples/geosearch
	$(GO) run ./examples/inventory

clean:
	$(GO) clean ./...
