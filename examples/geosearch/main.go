// Geosearch: nearest-neighbor and spherical keyword search over a city grid
// — the "find the hotel nearest to an address, among all hotels whose
// features include ..." example of Section 1.1, exercising three indexes:
//
//   - L∞NN-KW (Corollary 4): t nearest under L∞,
//   - L2NN-KW (Corollary 7): t nearest under Euclidean distance on the
//     integer street grid,
//   - SRP-KW (Corollary 6): everything within a radius.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"kwsc"
)

const (
	kwPool kwsc.Keyword = iota
	kwFreeParking
	kwPetFriendly
	numAmenities
)

func main() {
	rng := rand.New(rand.NewSource(13))
	const n = 30000
	const gridSide = 1 << 12 // city blocks

	objs := make([]kwsc.Object, n)
	for i := range objs {
		doc := []kwsc.Keyword{numAmenities + kwsc.Keyword(rng.Intn(60))}
		for w := kwsc.Keyword(0); w < numAmenities; w++ {
			if rng.Float64() < 0.15 {
				doc = append(doc, w)
			}
		}
		objs[i] = kwsc.Object{
			Point: kwsc.Point{float64(rng.Intn(gridSide)), float64(rng.Intn(gridSide))},
			Doc:   doc,
		}
	}
	ds, err := kwsc.NewDataset(objs)
	if err != nil {
		log.Fatal(err)
	}
	addr := kwsc.Point{float64(gridSide / 2), float64(gridSide / 2)}
	kws := []kwsc.Keyword{kwPool, kwPetFriendly}

	// --- t nearest under L∞. ----------------------------------------------
	linf, err := kwsc.NewLinfNN(ds, 2)
	if err != nil {
		log.Fatal(err)
	}
	res, ns, err := linf.Query(addr, 5, kws, kwsc.QueryOpts{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("5 nearest (L∞) hotels with pool + pet-friendly (%d range probes):\n", ns.Probes)
	for _, r := range res {
		p := ds.Point(r.ID)
		fmt.Printf("  hotel %-6d at (%4.0f,%4.0f)  L∞ distance %4.0f\n", r.ID, p[0], p[1], r.Dist)
	}

	// --- t nearest under L2 on the integer grid. ----------------------------
	l2, err := kwsc.NewL2NN(ds, 2)
	if err != nil {
		log.Fatal(err)
	}
	res2, ns2, err := l2.Query(addr, 5, kws, kwsc.QueryOpts{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("5 nearest (L2) hotels (%d sphere probes):\n", ns2.Probes)
	for _, r := range res2 {
		p := ds.Point(r.ID)
		fmt.Printf("  hotel %-6d at (%4.0f,%4.0f)  L2 distance %6.1f\n", r.ID, p[0], p[1], r.Dist)
	}

	// --- Everything within 150 blocks (SRP-KW). ------------------------------
	srp, err := kwsc.NewSRPKW(ds, 2)
	if err != nil {
		log.Fatal(err)
	}
	ball := kwsc.NewSphere(addr, 150)
	ids, st, err := srp.Collect(ball, kws, kwsc.QueryOpts{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hotels within 150 blocks: %d (%d work units)\n", len(ids), st.Ops)

	// Cross-check: the L2 top-5 must be the 5 closest sphere members when
	// the ball is large enough.
	if len(ids) >= 5 {
		for _, r := range res2 {
			if r.Dist > 150 {
				break
			}
			found := false
			for _, id := range ids {
				if id == r.ID {
					found = true
					break
				}
			}
			if !found {
				log.Fatalf("L2NN result %d missing from the sphere report", r.ID)
			}
		}
		fmt.Println("L2NN results confirmed inside the sphere report")
	}
}
