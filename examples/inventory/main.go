// Inventory: a live product catalog built on the dynamic ORP-KW index (the
// logarithmic-method extension) and the string vocabulary — products come
// and go, and queries combine price/stock ranges with tag search at any
// moment. Also demonstrates dataset persistence via the binary codec.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"kwsc"
)

func main() {
	vocab := kwsc.NewVocabulary()
	dyn, err := kwsc.NewDynamicORPKW(2, 2, 32)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	tags := []string{"organic", "vegan", "gluten-free", "local", "seasonal", "frozen", "imported", "bulk"}

	// Seed the catalog: (price, stock) points with tag documents.
	type product struct {
		handle int64
		name   string
	}
	var live []product
	for i := 0; i < 5000; i++ {
		doc := vocab.Doc(tags[rng.Intn(len(tags))], tags[rng.Intn(len(tags))])
		h, err := dyn.Insert(kwsc.Object{
			Point: kwsc.Point{1 + rng.Float64()*99, float64(rng.Intn(500))},
			Doc:   doc,
		})
		if err != nil {
			log.Fatal(err)
		}
		live = append(live, product{handle: h, name: fmt.Sprintf("sku-%05d", i)})
	}
	fmt.Printf("catalog: %d products across %d index parts\n", dyn.Len(), dyn.NumBuckets())

	organic, _ := vocab.Lookup("organic")
	vegan, _ := vocab.Lookup("vegan")
	query := func(label string) int {
		// Organic vegan products under $30 with at least 10 in stock.
		q := kwsc.NewRect([]float64{0, 10}, []float64{30, 1e9})
		ids, st, err := dyn.Collect(q, []kwsc.Keyword{organic, vegan})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %d organic+vegan products under $30 in stock (%d work units)\n",
			label, len(ids), st.Ops)
		return len(ids)
	}
	before := query("before churn")

	// Churn: discontinue a third of the catalog, add new arrivals.
	removed := 0
	for i := 0; i < len(live); i += 3 {
		ok, err := dyn.Delete(live[i].handle)
		if err != nil {
			log.Fatal(err)
		}
		if ok {
			removed++
		}
	}
	for i := 0; i < 1000; i++ {
		doc := vocab.Doc("organic", "vegan", tags[rng.Intn(len(tags))])
		if _, err := dyn.Insert(kwsc.Object{
			Point: kwsc.Point{5 + rng.Float64()*20, float64(20 + rng.Intn(100))},
			Doc:   doc,
		}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("churn: removed %d, added 1000; now %d products in %d parts\n",
		removed, dyn.Len(), dyn.NumBuckets())
	after := query("after churn")
	if after < before {
		fmt.Println("note: fewer matches can happen when deletions hit the matching set")
	}

	// Persist a snapshot of the current catalog as a static dataset.
	var objs []kwsc.Object
	if _, err := dyn.Query(kwsc.Universe(2), []kwsc.Keyword{organic, vegan},
		func(h int64, o *kwsc.Object) {
			objs = append(objs, kwsc.Object{Point: o.Point, Doc: o.Doc})
		}); err != nil {
		log.Fatal(err)
	}
	snapshot, err := kwsc.NewDataset(objs)
	if err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	if err := kwsc.WriteDataset(&buf, snapshot); err != nil {
		log.Fatal(err)
	}
	size := buf.Len()
	restored, err := kwsc.ReadDataset(&buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("persisted %d matching products in %d bytes; restored %d\n",
		snapshot.Len(), size, restored.Len())
}
