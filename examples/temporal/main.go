// Temporal: keyword search over versioned documents (the d=1 RR-KW setting
// the paper attributes to Anand et al. [7]): each document has a lifespan
// interval, and a query asks for the documents alive at some time during a
// window that contain all the query keywords. RR-KW maps every interval
// [a, b] to the corner point (a, b), turning interval intersection into a
// 2-dimensional ORP-KW query (Corollary 3 with d = 1).
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"kwsc"
)

func main() {
	rng := rand.New(rand.NewSource(11))
	base := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	day := func(d int) float64 { return float64(d) } // days since base

	// A corpus of wiki-style revisions: each revision is alive from its
	// creation until superseded, and carries term ids.
	const revisions = 50000
	const vocab = 400
	docs := make([]kwsc.RectObject, revisions)
	for i := range docs {
		start := rng.Intn(1400)
		life := 1 + rng.Intn(200)
		terms := make([]kwsc.Keyword, 3+rng.Intn(6))
		for j := range terms {
			// Zipf-ish: low term ids are common.
			terms[j] = kwsc.Keyword(rng.Intn(1 + rng.Intn(vocab)))
		}
		docs[i] = kwsc.RectObject{
			Rect: kwsc.NewRect([]float64{day(start)}, []float64{day(start + life)}),
			Doc:  terms,
		}
	}
	ix, err := kwsc.NewRRKW(docs, 2)
	if err != nil {
		log.Fatal(err)
	}

	// Query: revisions alive at any point of March 2021 mentioning both
	// term 3 and term 7.
	winStart := int(time.Date(2021, 3, 1, 0, 0, 0, 0, time.UTC).Sub(base).Hours() / 24)
	window := kwsc.NewRect([]float64{day(winStart)}, []float64{day(winStart + 30)})
	kws := []kwsc.Keyword{3, 7}

	ids, st, err := ix.Collect(window, kws, kwsc.QueryOpts{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("revisions alive in March 2021 mentioning terms 3 and 7: %d\n", len(ids))
	fmt.Printf("index work: %d units over %d visited nodes\n", st.Ops, st.NodesVisited)
	for i, id := range ids {
		if i == 5 {
			fmt.Printf("  ... and %d more\n", len(ids)-5)
			break
		}
		r := ix.Rect(id)
		fmt.Printf("  revision %-6d alive day %4.0f .. %4.0f\n", id, r.Lo[0], r.Hi[0])
	}

	// Verify against a linear scan.
	verify := 0
	for i, d := range docs {
		alive := d.Rect.Hi[0] >= window.Lo[0] && d.Rect.Lo[0] <= window.Hi[0]
		if alive && hasAll(d.Doc, kws) {
			verify++
			_ = i
		}
	}
	if verify != len(ids) {
		log.Fatalf("index reported %d, linear scan found %d", len(ids), verify)
	}
	fmt.Printf("verified against a full scan of %d revisions\n", revisions)
}

func hasAll(doc, ws []kwsc.Keyword) bool {
	for _, w := range ws {
		found := false
		for _, d := range doc {
			if d == w {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
