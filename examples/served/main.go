// Served: query a kwscd deployment over HTTP using the versioned /v1 wire
// types. The client half of this example is exactly what any external
// program would write against a production kwscd: build a kwsc.QueryRequest,
// POST it to /v1/query as JSON, decode the kwsc.QueryResponse. For a
// self-contained run it boots a small sharded server in-process first —
// identical to `kwscd -mode dynamic -shards 2` — then talks to it purely
// over the wire.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"

	"kwsc"
	"kwsc/internal/serve"
)

// Vocabulary of the toy store: each product is a (price, rating) point with
// keyword tags.
const (
	tagWireless kwsc.Keyword = iota
	tagNoiseCanceling
	tagWaterproof
	tagGaming
)

func main() {
	// --- Server scaffolding (what cmd/kwscd does for you in production).
	srv, err := serve.NewDynamic("", nil, serve.Config{Shards: 2, Dim: 2, K: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, srv.Handler())
	base := "http://" + ln.Addr().String()
	fmt.Printf("serving on %s\n\n", base)

	// --- Client side: everything below speaks only HTTP/JSON.

	// Insert a few products through POST /v1/write. Each 200 response means
	// the owning shard's write-ahead log has acknowledged the operation.
	products := []struct {
		name          string
		price, rating float64
		tags          []kwsc.Keyword
	}{
		{"AirBuds Max", 180, 8.9, []kwsc.Keyword{tagWireless, tagNoiseCanceling}},
		{"SeaSound", 90, 7.4, []kwsc.Keyword{tagWireless, tagWaterproof}},
		{"StudioPro", 320, 9.5, []kwsc.Keyword{tagWireless, tagNoiseCanceling, tagGaming}},
		{"Plugged", 45, 6.8, []kwsc.Keyword{tagNoiseCanceling}},
		{"TrailTone", 140, 8.1, []kwsc.Keyword{tagWireless, tagNoiseCanceling, tagWaterproof}},
	}
	names := map[int64]string{}
	for _, p := range products {
		var wr kwsc.WriteResponse
		post(base+kwsc.PathWrite, &kwsc.WriteRequest{
			Op:    kwsc.OpInsert,
			Point: []float64{p.price, p.rating},
			Doc:   p.tags,
		}, &wr)
		names[wr.Handle] = p.name
		fmt.Printf("inserted %-12s handle=%d shard=%d seq=%d\n", p.name, wr.Handle, wr.Shard, wr.Seq)
	}

	// Query: wireless noise-canceling headphones between $100 and $250 with
	// rating at least 8 — keyword search under a structured constraint.
	req := &kwsc.QueryRequest{
		Rect:     &kwsc.RectWire{Lo: []float64{100, 8}, Hi: []float64{250, 10}},
		Keywords: []kwsc.Keyword{tagWireless, tagNoiseCanceling},
	}
	var qr kwsc.QueryResponse
	post(base+kwsc.PathQuery, req, &qr)
	fmt.Printf("\nwireless+anc, price 100–250, rating ≥ 8 → %d hit(s) in %dus:\n",
		qr.Count, qr.ElapsedUs)
	for _, id := range qr.IDs {
		fmt.Printf("  %s\n", names[id])
	}
	for _, sh := range qr.Shards {
		fmt.Printf("  shard %d: %d reported, outcome %s\n", sh.Shard, sh.Reported, sh.Outcome)
	}

	// Delete one result and re-run: the handle routes back to its shard.
	var del kwsc.WriteResponse
	post(base+kwsc.PathWrite, &kwsc.WriteRequest{Op: kwsc.OpDelete, Handle: qr.IDs[0]}, &del)
	fmt.Printf("\ndeleted %s (shard %d): %v\n", names[qr.IDs[0]], del.Shard, del.Deleted)
	post(base+kwsc.PathQuery, req, &qr)
	fmt.Printf("same query now → %d hit(s)\n", qr.Count)
}

// post sends one JSON request and decodes the response, failing loudly on
// any non-200 — an ErrorResponse with a stable machine-readable code.
func post(url string, body, into any) {
	buf, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var er kwsc.ErrorResponse
		json.NewDecoder(resp.Body).Decode(&er)
		log.Fatalf("%s: %d %s: %s", url, resp.StatusCode, er.Code, er.Error)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		log.Fatal(err)
	}
}
