// Hotels: the full introductory scenario of the paper on a generated
// catalog — both structured conditions of Section 1 side by side:
//
//	C1  price in [$100,$200] and rating >= 8            (ORP-KW, Theorem 1)
//	C2  c1*price + c2*(10-rating) <= c3                 (LC-KW, Theorem 5)
//
// each combined with the keyword filter {pool, free-parking, pet-friendly},
// and compared against the two naive baselines the paper criticizes.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"kwsc"
)

const (
	kwPool kwsc.Keyword = iota
	kwFreeParking
	kwPetFriendly
	numQueryKws
	vocabSize = 64
)

func main() {
	rng := rand.New(rand.NewSource(7))
	const n = 20000
	objs := make([]kwsc.Object, n)
	for i := range objs {
		price := 40 + rng.Float64()*360 // $40 .. $400
		rating := 3 + rng.Float64()*7   // 3 .. 10
		doc := []kwsc.Keyword{numQueryKws + kwsc.Keyword(rng.Intn(vocabSize))}
		// Roughly 8% of hotels carry each amenity tag.
		for w := kwsc.Keyword(0); w < numQueryKws; w++ {
			if rng.Float64() < 0.08 {
				doc = append(doc, w)
			}
		}
		objs[i] = kwsc.Object{Point: kwsc.Point{price, rating}, Doc: doc}
	}
	ds, err := kwsc.NewDataset(objs)
	if err != nil {
		log.Fatal(err)
	}
	kws := []kwsc.Keyword{kwPool, kwFreeParking, kwPetFriendly}

	// --- C1: separate range constraints per attribute (ORP-KW). ----------
	orp, err := kwsc.NewORPKW(ds, 3)
	if err != nil {
		log.Fatal(err)
	}
	c1 := kwsc.NewRect([]float64{100, 8}, []float64{200, math.Inf(1)})
	ids, st, err := orp.Collect(c1, kws, kwsc.QueryOpts{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("C1 (range): %d hotels, %d work units\n", len(ids), st.Ops)

	// --- C2: a joint linear constraint (LC-KW). ---------------------------
	// 1*price + 40*(10-rating) <= 260, i.e. price + 400 - 40*rating <= 260.
	lc, err := kwsc.NewLCKW(ds, kwsc.LCKWConfig{K: 3})
	if err != nil {
		log.Fatal(err)
	}
	c2 := []kwsc.Halfspace{{Coef: []float64{1, -40}, Bound: -140}}
	var lcIDs []int32
	stLC, err := lc.QueryConstraints(c2, kws, kwsc.QueryOpts{}, func(id int32) {
		lcIDs = append(lcIDs, id)
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("C2 (linear): %d hotels, %d work units\n", len(lcIDs), stLC.Ops)

	// --- The two naive baselines on C1. -----------------------------------
	inv, err := kwsc.NewInvertedIndex(ds)
	if err != nil {
		log.Fatal(err)
	}
	kwOnly := inv.KeywordsOnly(c1, kws)
	fmt.Printf("keywords-only baseline: %d results after scanning %d posting entries\n",
		len(kwOnly), inv.ScanCost(kws))
	so, err := kwsc.NewStructuredOnly(ds)
	if err != nil {
		log.Fatal(err)
	}
	soIDs, candidates, _ := so.Query(c1, kws)
	fmt.Printf("structured-only baseline: %d results after filtering %d candidates\n",
		len(soIDs), candidates)

	if len(kwOnly) != len(ids) || len(soIDs) != len(ids) {
		log.Fatalf("baseline disagreement: %d vs %d vs %d", len(ids), len(kwOnly), len(soIDs))
	}
	fmt.Printf("\nall three methods agree; the index did %d work units vs %d (keywords-only)\n",
		st.Ops, inv.ScanCost(kws))
	fmt.Printf("and %d (structured-only) — the Section 1 motivation, measured\n", candidates)
}
