// Quickstart: index a tiny hotel catalog and run the paper's introductory
// query — keyword search with a structured range condition (condition C1 of
// Section 1: price in [100, 200] and rating >= 8, with documents containing
// 'pool', 'free-parking' and 'pet-friendly').
package main

import (
	"fmt"
	"log"
	"math"

	"kwsc"
)

// The keyword vocabulary of this toy catalog.
const (
	kwPool kwsc.Keyword = iota
	kwFreeParking
	kwPetFriendly
	kwSpa
	kwBeach
	kwBusiness
)

func main() {
	// Each object is a point (price, rating) plus a document of tags.
	hotels := []struct {
		name   string
		price  float64
		rating float64
		tags   []kwsc.Keyword
	}{
		{"Harbor Lights", 120, 8.7, []kwsc.Keyword{kwPool, kwFreeParking, kwPetFriendly}},
		{"Grand Meridian", 310, 9.4, []kwsc.Keyword{kwPool, kwSpa, kwBusiness}},
		{"Budget Inn", 60, 6.1, []kwsc.Keyword{kwFreeParking}},
		{"Seaside Paws", 150, 8.2, []kwsc.Keyword{kwPool, kwFreeParking, kwPetFriendly, kwBeach}},
		{"Downtown Suites", 180, 7.5, []kwsc.Keyword{kwPool, kwFreeParking, kwPetFriendly}},
		{"The Conservatory", 195, 9.1, []kwsc.Keyword{kwPool, kwPetFriendly, kwFreeParking, kwSpa}},
	}
	objs := make([]kwsc.Object, len(hotels))
	for i, h := range hotels {
		objs[i] = kwsc.Object{
			Point: kwsc.Point{h.price, h.rating},
			Doc:   h.tags,
		}
	}
	ds, err := kwsc.NewDataset(objs)
	if err != nil {
		log.Fatal(err)
	}

	// Build the Theorem 1 index for queries carrying k=3 keywords.
	ix, err := kwsc.NewORPKW(ds, 3)
	if err != nil {
		log.Fatal(err)
	}

	// Condition C1: price in [100, 200] and rating >= 8 ...
	q := kwsc.NewRect([]float64{100, 8}, []float64{200, math.Inf(1)})
	// ... and the document must contain all three keywords.
	kws := []kwsc.Keyword{kwPool, kwFreeParking, kwPetFriendly}

	ids, st, err := ix.Collect(q, kws, kwsc.QueryOpts{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("C1 query: price in [100,200], rating >= 8, tags {pool, free-parking, pet-friendly}\n")
	for _, id := range ids {
		h := hotels[id]
		fmt.Printf("  %-18s $%.0f  rating %.1f\n", h.name, h.price, h.rating)
	}
	fmt.Printf("(%d results; %d index nodes visited, %d work units)\n",
		len(ids), st.NodesVisited, st.Ops)
}
