package kwsc

// Replication facade. A durable dynamic index (OpenDurable) replicates to
// read-only follower processes by shipping its write-ahead log: the primary
// side serves its checkpoint and seq-continuous frame tail over HTTP (the
// sharded service wires this up automatically; embedders mount a
// ReplicaShipper themselves), and the follower side bootstraps from the
// newest checkpoint, replays the tail into its own local durable state, and
// tails forever with capped jittered backoff. Every follower knows exactly
// how stale it is: AppliedSeq is the primary operation prefix its queries
// reflect, Staleness the measured age of its last provably-caught-up view.
// See DESIGN.md §16.
//
//	f, err := kwsc.StartReplica(kwsc.ReplicaConfig{
//		Dir:     "/var/lib/kwsc-replica/shard-000",
//		Primary: "http://primary:8080/repl/v1/shard/000",
//		Dim:     2, K: 2,
//	})
//	...
//	ids, _, _ := f.Durable().Collect(q, ws) // acked prefix [1, f.AppliedSeq()]

import (
	"kwsc/internal/repl"
	"kwsc/internal/wal"
)

// Replica is a continuously-tailing read-only follower of one shipped
// durable directory.
type Replica = repl.Follower

// ReplicaConfig configures a Replica; see repl.FollowerConfig.
type ReplicaConfig = repl.FollowerConfig

// ReplicaShipper serves one durable directory's checkpoint and WAL tail to
// followers; mount Handler under the URL passed as the followers' Primary.
type ReplicaShipper = repl.Shipper

// ErrReplicaDiverged reports a follower whose replay no longer reproduces
// the primary's logged history; it stops applying rather than serve a wrong
// prefix.
var ErrReplicaDiverged = repl.ErrDiverged

// ErrReplicaReadOnly reports a direct write through a replica's Durable():
// follower state is owned by the shipped log, so mutations are refused
// instead of silently diverging the replica from its primary.
var ErrReplicaReadOnly = wal.ErrReadOnly

// OpenReplica seeds (when the directory is empty) and opens a follower
// without starting its tail loop; the caller drives catch-up with Poll.
func OpenReplica(cfg ReplicaConfig) (*Replica, error) { return repl.OpenFollower(cfg) }

// StartReplica opens a follower and starts its continuous tail loop.
func StartReplica(cfg ReplicaConfig) (*Replica, error) { return repl.StartFollower(cfg) }
