package kwsc

import (
	"errors"
	"sync/atomic"

	"kwsc/internal/core"
	"kwsc/internal/invidx"
	"kwsc/internal/obs"
)

// fallbacksTotal counts degraded-mode fallbacks process-wide; each Degraded
// instance also keeps its own FallbackCount.
var fallbacksTotal = obs.Default().Counter("kwsc_fallbacks_total")

// Degraded answers rectangle+keywords queries through the paper's index but
// falls back to the inverted-index baseline when the index path degrades: a
// node-budget stop (the traversal is pathologically expensive for this
// query) or a recovered index-internal panic (the traversal cannot be
// trusted). The baseline's posting-list intersection is slower but has a
// predictable O(N) cost and no shared state with the tree, so the fallback
// returns the exact full answer; QueryStats.Fallback records that it ran.
//
// Deadline and cancellation stops do NOT trigger fallback — the caller asked
// to give up at that wall-clock point, and the baseline would blow through
// it too. Validation errors surface unchanged: the query itself is broken.
type Degraded struct {
	ds   *Dataset
	ix   rectCollector
	k    int
	inv  *invidx.Index  // raw baseline, exposed via Baseline()
	pinv *invidx.Packed // block-compressed form driving the fallback path

	fallbacks atomic.Int64
}

// rectCollector is the slice of the index API Degraded needs; both ORPKW and
// ORPKWHigh satisfy it.
type rectCollector interface {
	CollectInto(q *Rect, ws []Keyword, opts QueryOpts, buf []int32) ([]int32, QueryStats, error)
}

// NewDegraded builds the primary index (Theorem 1 for d <= 2, Theorem 2
// otherwise) plus the inverted-index fallback for k-keyword queries.
// Construction options (WithFlatLayout, WithParallelism, ...) apply to the
// primary index; the fallback is always the plain packed baseline.
func NewDegraded(ds *Dataset, k int, opts ...Option) (*Degraded, error) {
	var ix rectCollector
	var err error
	if ds.Dim() <= 2 {
		ix, err = core.BuildORPKW(ds, k, opts...)
	} else {
		ix, err = core.BuildORPKWHigh(ds, k, opts...)
	}
	if err != nil {
		return nil, err
	}
	inv := invidx.Build(ds)
	return &Degraded{ds: ds, ix: ix, k: k, inv: inv, pinv: inv.Pack()}, nil
}

// Collect answers the query, degrading to the baseline on budget exhaustion
// or index panic. On fallback the returned stats carry Fallback=true, the
// Ops spent on both attempts, and no error; Limit/MaxResults still cap the
// fallback's answer (with Truncated set).
func (d *Degraded) Collect(q *Rect, ws []Keyword, opts QueryOpts) ([]int32, QueryStats, error) {
	return d.CollectInto(q, ws, opts, nil)
}

// CollectInto is Collect appending into buf, reusing its capacity; the
// returned slice aliases buf only.
func (d *Degraded) CollectInto(q *Rect, ws []Keyword, opts QueryOpts, buf []int32) ([]int32, QueryStats, error) {
	ids, st, err := d.ix.CollectInto(q, ws, opts, buf)
	if err == nil {
		return ids, st, nil
	}
	var pe *PanicError
	if !errors.Is(err, ErrBudget) && !errors.As(err, &pe) {
		return ids, st, err
	}
	d.fallbacks.Add(1)
	if obs.MetricsEnabled() {
		fallbacksTotal.Inc()
	}
	full := d.pinv.KeywordsOnly(q, ws)
	fst := QueryStats{Fallback: true, Ops: st.Ops + d.pinv.ScanCost(ws), Reported: len(full)}
	limit := opts.Limit
	if opts.Policy.MaxResults > 0 && (limit == 0 || opts.Policy.MaxResults < limit) {
		limit = opts.Policy.MaxResults
	}
	if limit > 0 && len(full) > limit {
		full = full[:limit]
		fst.Reported = limit
		fst.Truncated = true
	}
	return append(buf[:0], full...), fst, nil
}

// Query streams the answer to report, with the same fallback semantics as
// Collect. (The fallback materializes internally, so Query exists for
// interface uniformity, not streaming economy.)
func (d *Degraded) Query(q *Rect, ws []Keyword, opts QueryOpts, report func(int32)) (QueryStats, error) {
	ids, st, err := d.CollectInto(q, ws, opts, nil)
	for _, id := range ids {
		report(id)
	}
	return st, err
}

// K returns the keyword arity queries must carry.
func (d *Degraded) K() int { return d.k }

// FallbackCount returns how many queries have degraded to the baseline since
// construction (concurrency-safe).
func (d *Degraded) FallbackCount() int64 { return d.fallbacks.Load() }

// Baseline exposes the inverted-index fallback.
func (d *Degraded) Baseline() *InvertedIndex { return d.inv }

// compile-time interface checks for the two primary index shapes.
var (
	_ rectCollector = (*core.ORPKW)(nil)
	_ rectCollector = (*core.ORPKWHigh)(nil)
)
