package kwsc

// Unified index API. Every static family answers the same shaped question —
// "report the objects inside query shape Q whose documents carry all k
// keywords" — through the same three methods; only the shape of Q differs
// per family (rectangles, spheres, halfspace conjunctions). Index captures
// that surface once, generically over the query shape, so layers above the
// facade (internal/serve's shards, user fan-out code) can hold any family
// behind one type instead of switching on concrete structs:
//
//	var ix kwsc.Index[*kwsc.Rect] = orpkw // or ORPKWHigh, RRKW, MultiK
//	ids, st, err := ix.Collect(q, ws, kwsc.QueryOpts{})
//
// DynamicIndex is the same idea for the mutable indexes: DynamicORPKW and
// its durable wrapper share the mutator + handle-reporting query surface.

// Index is the read surface shared by every static index family,
// parameterized by the family's query shape Q:
//
//	Index[*Rect]       ORPKW, ORPKWHigh, RRKW, MultiK
//	Index[*Sphere]     SRPKW
//	Index[[]Halfspace] LCKW
//
// All methods are safe for concurrent use (static indexes are immutable
// after construction). Results are reported as positions into the dataset
// the index was built from. A policy stop (ErrDeadline, ErrBudget,
// ErrCanceled) returns the results reported so far — a prefix-correct
// subset of the full answer — alongside the typed error.
type Index[Q any] interface {
	// Query streams matching object ids to report.
	Query(q Q, ws []Keyword, opts QueryOpts, report func(int32)) (QueryStats, error)
	// Collect is Query returning a freshly allocated, caller-owned slice.
	Collect(q Q, ws []Keyword, opts QueryOpts) ([]int32, QueryStats, error)
	// CollectInto is Collect appending into buf, reusing its capacity; the
	// returned slice aliases buf only (0 steady-state allocs/op).
	CollectInto(q Q, ws []Keyword, opts QueryOpts, buf []int32) ([]int32, QueryStats, error)
	// K returns the keyword arity queries must carry (for MultiK, the
	// largest supported arity).
	K() int
}

// DynamicIndex is the surface shared by the mutable indexes: the in-memory
// DynamicORPKW and the WAL-backed DurableORPKW. Mutators serialize
// internally; queries run lock-free against the last published state.
// Results are reported as (stable handle, object) pairs — positions are
// meaningless under churn.
type DynamicIndex interface {
	// Insert adds an object and returns its stable handle.
	Insert(obj Object) (int64, error)
	// Delete removes the object with the given handle; deleting an unknown
	// or already-deleted handle returns (false, nil).
	Delete(handle int64) (bool, error)
	// Query reports every live object in q carrying all k keywords.
	Query(q *Rect, ws []Keyword, report func(handle int64, obj *Object)) (QueryStats, error)
	// QueryWith is Query under explicit options (limits, budgets, deadlines).
	QueryWith(q *Rect, ws []Keyword, opts QueryOpts, report func(handle int64, obj *Object)) (QueryStats, error)
	// Collect is Query returning the handles.
	Collect(q *Rect, ws []Keyword) ([]int64, QueryStats, error)
	// Len returns the number of live objects.
	Len() int
	// K returns the keyword arity queries must carry.
	K() int
}

// Compile-time assertions: one per family, so a signature drift in any
// family breaks the build here rather than at a use site.
var (
	_ Index[*Rect]       = (*ORPKW)(nil)
	_ Index[*Rect]       = (*ORPKWHigh)(nil)
	_ Index[*Rect]       = (*RRKW)(nil)
	_ Index[*Rect]       = (*MultiK)(nil)
	_ Index[*Rect]       = (*Degraded)(nil)
	_ Index[*Sphere]     = (*SRPKW)(nil)
	_ Index[[]Halfspace] = (*LCKW)(nil)

	_ DynamicIndex = (*DynamicORPKW)(nil)
	_ DynamicIndex = (*DurableORPKW)(nil)
)
