package kwsc

// Observability surface: a process-wide metrics registry fed by every index
// family, an optional tracing hook, and a slow-query log. All of it is
// zero-dependency and cheap enough to leave on in production — the metrics
// path is atomic increments on pre-resolved counters, and the query hot
// paths stay allocation-free with the registry enabled (see the
// MetricsOn/MetricsOff benchmark pair and the alloc guard).
//
//	reg := kwsc.Metrics()                       // snapshot, a plain struct
//	fmt.Println(reg.Counter(`kwsc_queries_total{family="orpkw"}`))
//	kwsc.WriteMetricsPrometheus(os.Stdout)      // Prometheus text format
//	kwsc.EnableSlowLog(32, 10_000)              // keep top-32 queries >= 10k ops
//	for _, e := range kwsc.SlowQueries() { ... } // each echoes its query

import (
	"bytes"
	"io"

	"kwsc/internal/obs"
)

// Tracing and metrics types.
type (
	// Tracer observes query execution: Begin fires at entry of every
	// instrumented query method, End receives the completed Span. Install
	// process-wide with SetTracer or per-index with WithTracer. Both hooks
	// may be called concurrently and must be cheap or buffer internally.
	Tracer = obs.Tracer
	// Span is one completed query: family, operation, echoed query, arity,
	// result count, work, latency, and the policy outcome. Planner spans
	// also carry the chosen route and per-strategy cost estimates.
	Span = obs.Span
	// Outcome classifies how a query ended ("ok", "deadline", "budget",
	// "canceled", "invalid", "panic", "error").
	Outcome = obs.Outcome
	// SlowEntry is one retained slow query, echoing its inputs like
	// PanicError does so it can be reproduced.
	SlowEntry = obs.SlowEntry
	// MetricsSnapshot is a point-in-time copy of the registry: plain maps of
	// counters, gauges, and histograms keyed by series name.
	MetricsSnapshot = obs.Snapshot
	// HistogramSnapshot is one histogram's cumulative bucket counts.
	HistogramSnapshot = obs.HistSnapshot
)

// Query outcomes reported in spans and slow-log entries.
const (
	OutcomeOK       = obs.OutcomeOK
	OutcomeInvalid  = obs.OutcomeInvalid
	OutcomeDeadline = obs.OutcomeDeadline
	OutcomeBudget   = obs.OutcomeBudget
	OutcomeCanceled = obs.OutcomeCanceled
	OutcomePanic    = obs.OutcomePanic
	OutcomeError    = obs.OutcomeError
)

// Metrics returns a snapshot of the process-wide registry: per-family query
// and error counters, latency/work histograms, build times, dynamic-index
// churn, batch throughput, planner route decisions, and fallback counts.
func Metrics() MetricsSnapshot { return obs.Default().Snapshot() }

// ResetMetrics zeroes every metric in the registry (counters, gauges,
// histogram buckets). Mainly for tests and between benchmark phases.
func ResetMetrics() { obs.Default().Reset() }

// EnableMetrics turns registry updates on or off process-wide. Metrics are
// on by default; turning them off reduces the per-query overhead to one
// atomic load.
func EnableMetrics(on bool) { obs.SetMetricsEnabled(on) }

// MetricsEnabled reports whether registry updates are on.
func MetricsEnabled() bool { return obs.MetricsEnabled() }

// SetTracer installs t as the process-wide tracer receiving a Span for every
// query on every instrumented index; nil uninstalls. Per-index tracers
// (WithTracer) fire in addition to the global one.
func SetTracer(t Tracer) { obs.SetTracer(t) }

// EnableSlowLog starts retaining the top-capacity queries by work (ops) among
// those costing at least minOps, each echoing its query inputs. capacity <= 0
// disables the log and discards retained entries.
func EnableSlowLog(capacity int, minOps int64) { obs.EnableSlowLog(capacity, minOps) }

// SlowQueries returns the retained slow queries, most expensive first.
func SlowQueries() []SlowEntry { return obs.SlowQueries() }

// WriteMetricsJSON writes the current registry snapshot as indented JSON
// (expvar-style: one object with counters, gauges, and histograms).
func WriteMetricsJSON(w io.Writer) error { return obs.Default().Snapshot().WriteJSON(w) }

// WriteMetricsPrometheus writes the current registry snapshot in the
// Prometheus text exposition format (counters and gauges as-is, histograms
// as cumulative _bucket/_sum/_count series).
func WriteMetricsPrometheus(w io.Writer) error {
	return obs.Default().Snapshot().WritePrometheus(w)
}

// ParseMetricsJSON parses a snapshot written by WriteMetricsJSON (or the
// compact form benchmark runs embed), for tooling that diffs snapshots.
func ParseMetricsJSON(data []byte) (MetricsSnapshot, error) {
	return obs.ParseJSON(bytes.NewReader(data))
}

// ParseMetricsPrometheus parses a snapshot written by WriteMetricsPrometheus.
func ParseMetricsPrometheus(data []byte) (MetricsSnapshot, error) {
	return obs.ParsePrometheus(bytes.NewReader(data))
}
