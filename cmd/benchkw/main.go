// Command benchkw regenerates every experiment in DESIGN.md Section 5: one
// experiment per row of Table 1 of Lu & Tao (PODS 2023), plus the two
// figures and the ablations. Each experiment sweeps the variable its claim
// is stated in (N, OUT, t, k), measures the machine-independent query cost
// (work units: node visits + object examinations), fits a power law, and
// prints the fitted exponent next to the paper's predicted exponent.
//
// Usage:
//
//	benchkw [-exp all|e1,e2,...] [-quick] [-seed n]
//
// The output of a full run is recorded in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"sort"
	"strings"

	"kwsc/internal/bitpack"
	"kwsc/internal/core"
	"kwsc/internal/dataset"
	"kwsc/internal/geom"
	"kwsc/internal/invidx"
	"kwsc/internal/obs"
	"kwsc/internal/spart"
	"kwsc/internal/stats"
	"kwsc/internal/twosi"
	"kwsc/internal/workload"
)

var (
	flagExp     = flag.String("exp", "all", "comma-separated experiment ids (e1,e1b,e2,e3,e4,e5,e6,e6b,e7,e8,e9,f1,f2,a1,a2,a3,space,planner) or 'all'")
	flagQuick   = flag.Bool("quick", false, "smaller sweeps (CI-friendly)")
	flagSeed    = flag.Int64("seed", 1, "base RNG seed")
	flagMetrics = flag.Bool("metrics", false, "dump the metrics registry (Prometheus text format) after the run")
)

type experiment struct {
	id, title string
	run       func()
}

func main() {
	flag.Parse()
	exps := []experiment{
		{"e1", "E1: ORP-KW d=2 (Theorem 1) — query exponent in N", e1},
		{"e1b", "E1b: ORP-KW d=2 — output sensitivity and baselines", e1b},
		{"e2", "E2: ORP-KW d=3 (Theorem 2) — dimension reduction", e2},
		{"e3", "E3: rectangles through LC-KW (Theorem 5 route)", e3},
		{"e4", "E4: RR-KW (Corollary 3) — temporal intervals d=1", e4},
		{"e5", "E5: L∞ NN-KW (Corollary 4) — exponent in t", e5},
		{"e6", "E6: LC-KW (Theorem 5) — halfplane conjunctions", e6},
		{"e6b", "E6b: crossing sensitivity — Willard vs grid substrate", e6b},
		{"e7", "E7: SRP-KW (Corollary 6) — lifted sphere queries", e7},
		{"e8", "E8: L2 NN-KW (Corollary 7) — integer grids", e8},
		{"e9", "E9: k-SI (Section 1.2) — the three additive terms", e9},
		{"f1", "F1: Figure 1 — crossing profile of a vertical line", f1},
		{"f2", "F2: Figure 2 — type-1/type-2 decomposition", f2},
		{"a1", "A1: ablation — kd route vs partition-tree route", a1},
		{"a2", "A2: ablation — framework vs Cohen–Porat 2-SI vs inverted index", a2},
		{"a3", "A3: ablation — d=1 word-parallel bitmaps vs the framework", a3},
		{"space", "SPACE: analytic space audits across all indexes", spaceAudit},
		{"planner", "PLANNER: cost-based routing across query regimes", plannerExp},
	}
	want := map[string]bool{}
	for _, id := range strings.Split(*flagExp, ",") {
		want[strings.TrimSpace(id)] = true
	}
	ran := 0
	for _, e := range exps {
		if !want["all"] && !want[e.id] {
			continue
		}
		fmt.Printf("==== %s ====\n", e.title)
		e.run()
		fmt.Println()
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matched %q\n", *flagExp)
		os.Exit(2)
	}
	if *flagMetrics {
		fmt.Println("==== METRICS: registry after the run ====")
		if err := obs.Default().Snapshot().WritePrometheus(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "metrics dump: %v\n", err)
			os.Exit(1)
		}
	}
}

func sizes(quickMax, fullMax int) []int {
	max := fullMax
	if *flagQuick {
		max = quickMax
	}
	var out []int
	for n := 1 << 12; n <= max; n <<= 1 {
		out = append(out, n)
	}
	return out
}

// meanQueryOps runs queries and returns the mean work units and mean OUT.
func meanQueryOps(run func(i int) (core.QueryStats, int)) (ops, out float64) {
	const reps = 9
	var so, sr float64
	for i := 0; i < reps; i++ {
		st, n := run(i)
		so += float64(st.Ops)
		sr += float64(n)
	}
	return so / reps, sr / reps
}

// ---------------------------------------------------------------------------

func e1() {
	for _, k := range []int{2, 3} {
		tb := stats.NewTable("N", "ops(OUT=0)", "nodes", "N^{1-1/k}", "ops/bound")
		var xs, ys []float64
		for _, n := range sizes(1<<15, 1<<17) {
			ds, kws, slab := workload.GenAdversarial(workload.Adversarial{
				Seed: *flagSeed, Objects: n, Dim: 2, K: k,
			})
			ix, err := core.BuildORPKW(ds, k)
			check(err)
			buf := make([]int32, 0, 256)
			ops, out := meanQueryOps(func(i int) (core.QueryStats, int) {
				ids, st, err := ix.CollectInto(slab, kws, core.QueryOpts{}, buf)
				check(err)
				buf = ids[:0]
				return st, len(ids)
			})
			if out != 0 {
				fmt.Printf("WARNING: adversarial slab should have OUT=0, got %.0f\n", out)
			}
			nn := float64(ds.N())
			bound := math.Pow(nn, 1-1/float64(k))
			xs = append(xs, nn)
			ys = append(ys, ops)
			tb.AddRow(int(nn), ops, ix.Framework().NumNodes(), bound, ops/bound)
		}
		e, _, r2 := stats.FitPowerLaw(xs, ys)
		fmt.Print(tb.String())
		fmt.Printf("k=%d: fitted ops ~ N^%.3f (R^2=%.3f); paper's upper bound is N^%.3f\n",
			k, e, r2, 1-1/float64(k))
		fmt.Printf("(worst-case-shaped input: sub-threshold posting lists + off-slab co-occurrences)\n\n")
	}
}

func e1b() {
	n := 1 << 16
	if *flagQuick {
		n = 1 << 14
	}
	tb := stats.NewTable("OUT", "index ops", "kw-only ops", "struct-only ops", "OUT^{1/2}")
	var xs, ys []float64
	for _, out := range []int{1, 4, 16, 64, 256, 1024, 4096} {
		ds, kws, region := workload.GenPlanted(workload.Planted{
			Seed: *flagSeed + int64(out), Objects: n, Dim: 2, K: 2, Out: out, Partial: n / 8,
		})
		ix, err := core.BuildORPKW(ds, 2)
		check(err)
		inv := invidx.Build(ds)
		so := core.BuildStructuredOnly(ds, nil)
		buf := make([]int32, 0, 4096)
		ops, _ := meanQueryOps(func(i int) (core.QueryStats, int) {
			ids, st, err := ix.CollectInto(region, kws, core.QueryOpts{}, buf)
			check(err)
			buf = ids[:0]
			return st, len(ids)
		})
		kwOps := float64(inv.ScanCost(kws))
		_, cand, sost := so.Query(region, kws)
		soOps := float64(sost.PtChecks) + float64(cand)
		xs = append(xs, float64(out))
		ys = append(ys, ops)
		tb.AddRow(out, ops, kwOps, soOps, math.Sqrt(float64(out)))
	}
	e, _, r2 := stats.FitPowerLaw(xs, ys)
	fmt.Print(tb.String())
	fmt.Printf("fitted index ops ~ OUT^%.3f (R^2=%.3f); paper predicts the output-\n", e, r2)
	fmt.Printf("sensitive term OUT^{1/k} = OUT^0.500 (plus the fixed N^{1-1/k} floor)\n")
}

func e2() {
	tb := stats.NewTable("N", "ops(OUT=0)", "space words", "N loglogN", "levels", "maxType2/level")
	var xs, ys []float64
	for _, n := range sizes(1<<13, 1<<14) {
		ds, kws, slab := workload.GenAdversarial(workload.Adversarial{
			Seed: *flagSeed, Objects: n, Dim: 3, K: 2,
		})
		ix, err := core.BuildORPKWHigh(ds, 2)
		check(err)
		ops, _ := meanQueryOps(func(i int) (core.QueryStats, int) {
			ids, st, err := ix.Collect(slab, kws, core.QueryOpts{})
			check(err)
			return st, len(ids)
		})
		// Max type-2 nodes per level over a few random rectangles.
		rng := rand.New(rand.NewSource(*flagSeed + 7))
		maxT2 := 0
		for q := 0; q < 10; q++ {
			prof, err := ix.Type2Profile(workload.RandRect(rng, 3, 0.5), kws)
			check(err)
			for _, c := range prof {
				if c > maxT2 {
					maxT2 = c
				}
			}
		}
		nn := float64(ds.N())
		xs = append(xs, nn)
		ys = append(ys, ops)
		tb.AddRow(int(nn), ops, ix.Space().TotalWords(64),
			nn*math.Log2(math.Log2(nn)), ix.Levels(), maxT2)
	}
	e, _, r2 := stats.FitPowerLaw(xs, ys)
	fmt.Print(tb.String())
	fmt.Printf("fitted ops ~ N^%.3f (R^2=%.3f); paper predicts N^0.500 at k=2,\n", e, r2)
	fmt.Printf("space O(N loglogN) at d=3, <=2 type-2 nodes per level (Figure 2)\n")
}

func e3() {
	tb := stats.NewTable("N", "ops(OUT=0)", "N^{1/2}")
	var xs, ys []float64
	for _, n := range sizes(1<<14, 1<<16) {
		ds, kws, slab := workload.GenAdversarial(workload.Adversarial{
			Seed: *flagSeed, Objects: n, Dim: 2, K: 2,
		})
		ix, err := core.BuildSPKW(ds, core.SPKWConfig{K: 2})
		check(err)
		hs := []geom.Halfspace{
			{Coef: []float64{1, 0}, Bound: slab.Hi[0]},
			{Coef: []float64{-1, 0}, Bound: -slab.Lo[0]},
		}
		ops, _ := meanQueryOps(func(i int) (core.QueryStats, int) {
			ids, st, err := ix.CollectConstraints(hs, kws, core.QueryOpts{})
			check(err)
			return st, len(ids)
		})
		nn := float64(ds.N())
		xs = append(xs, nn)
		ys = append(ys, ops)
		tb.AddRow(int(nn), ops, math.Sqrt(nn))
	}
	e, _, r2 := stats.FitPowerLaw(xs, ys)
	fmt.Print(tb.String())
	fmt.Printf("rectangle-as-4-constraints through the partition tree: fitted ops ~ N^%.3f\n", e)
	fmt.Printf("(R^2=%.3f); paper's Theorem 5 predicts N^{1-1/k} log N = N^0.5 logN shape\n", r2)
}

func e4() {
	tb := stats.NewTable("N", "ops", "OUT", "N^{1/2}")
	var xs, ys []float64
	rng := rand.New(rand.NewSource(*flagSeed))
	for _, n := range sizes(1<<14, 1<<16) {
		// Adversarial temporal intervals: sub-threshold posting lists per
		// query keyword, plus full matches whose lifespans avoid the query
		// window [0.47, 0.53].
		partial := int(0.9 * math.Pow(float64(3*n), 0.5))
		rects := make([]core.RectObject, n)
		for i := range rects {
			a := rng.Float64()
			span := rng.Float64() * 0.01
			doc := []dataset.Keyword{dataset.Keyword(2 + rng.Intn(62)), dataset.Keyword(64 + rng.Intn(64))}
			switch {
			case i < n/16: // full match away from the window
				if a >= 0.44 && a <= 0.56 {
					a = rng.Float64() * 0.4
				}
				doc = []dataset.Keyword{0, 1, dataset.Keyword(2 + rng.Intn(62))}
			case i < n/16+partial:
				doc[0] = 0
			case i < n/16+2*partial:
				doc[0] = 1
			}
			rects[i] = core.RectObject{
				Rect: &geom.Rect{Lo: []float64{a}, Hi: []float64{a + span}},
				Doc:  doc,
			}
		}
		ix, err := core.BuildRRKW(rects, 2)
		check(err)
		window := &geom.Rect{Lo: []float64{0.47}, Hi: []float64{0.52}}
		ops, out := meanQueryOps(func(i int) (core.QueryStats, int) {
			ids, st, err := ix.Collect(window, []dataset.Keyword{0, 1}, core.QueryOpts{})
			check(err)
			return st, len(ids)
		})
		nn := float64(ix.Dataset().N())
		xs = append(xs, nn)
		ys = append(ys, ops)
		tb.AddRow(int(nn), ops, out, math.Sqrt(nn))
	}
	e, _, r2 := stats.FitPowerLaw(xs, ys)
	fmt.Print(tb.String())
	fmt.Printf("temporal intervals (d=1, corner space d=2): fitted ops ~ N^%.3f (R^2=%.3f);\n", e, r2)
	fmt.Printf("paper predicts N^{1-1/k} = N^0.500 for OUT=0 (keywords never co-occur)\n")
}

func e5() {
	n := 1 << 15
	if *flagQuick {
		n = 1 << 13
	}
	ds := workload.Gen(workload.Config{Seed: *flagSeed, Objects: n, Dim: 2, Vocab: 64, DocLen: 5})
	ix, err := core.BuildLinfNN(ds, 2)
	check(err)
	tb := stats.NewTable("t", "inner ops", "probes", "t^{1/2}")
	var xs, ys []float64
	rng := rand.New(rand.NewSource(*flagSeed + 5))
	for _, t := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256} {
		var ops, probes float64
		const reps = 5
		for i := 0; i < reps; i++ {
			q := geom.Point{rng.Float64(), rng.Float64()}
			_, ns, err := ix.Query(q, t, []dataset.Keyword{1, 2}, core.QueryOpts{})
			check(err)
			ops += float64(ns.Ops)
			probes += float64(ns.Probes)
		}
		ops /= reps
		probes /= reps
		xs = append(xs, float64(t))
		ys = append(ys, ops)
		tb.AddRow(t, ops, probes, math.Sqrt(float64(t)))
	}
	e, _, r2 := stats.FitPowerLaw(xs, ys)
	fmt.Print(tb.String())
	fmt.Printf("fitted inner ops ~ t^%.3f (R^2=%.3f); paper predicts t^{1/k} = t^0.500\n", e, r2)
	fmt.Printf("with an O(log N) probe count (binary search over candidate radii)\n")
}

func e6() {
	for _, s := range []int{1, 2, 3} {
		tb := stats.NewTable("N", "ops(OUT=0)", "N^{0.7925}")
		var xs, ys []float64
		for _, n := range sizes(1<<14, 1<<15) {
			ds, kws, slab := workload.GenAdversarial(workload.Adversarial{
				Seed: *flagSeed, Objects: n, Dim: 2, K: 2,
			})
			ix, err := core.BuildSPKW(ds, core.SPKWConfig{K: 2})
			check(err)
			// The first two constraints pin the empty slab; extra fixed
			// constraints (identical across N so the sweep is comparable)
			// trim it further.
			hs := []geom.Halfspace{
				{Coef: []float64{1, 0}, Bound: slab.Hi[0]},
				{Coef: []float64{-1, 0}, Bound: -slab.Lo[0]},
			}
			extras := []geom.Halfspace{
				{Coef: []float64{0, 1}, Bound: 0.9},
				{Coef: []float64{1, 1}, Bound: 1.3},
			}
			hs = append(hs, extras[:s-1]...)
			ops, _ := meanQueryOps(func(i int) (core.QueryStats, int) {
				ids, st, err := ix.CollectConstraints(hs, kws, core.QueryOpts{})
				check(err)
				return st, len(ids)
			})
			nn := float64(ds.N())
			xs = append(xs, nn)
			ys = append(ys, ops)
			tb.AddRow(int(nn), ops, math.Pow(nn, 0.7925))
		}
		e, _, r2 := stats.FitPowerLaw(xs, ys)
		fmt.Print(tb.String())
		fmt.Printf("s=%d constraints: fitted ops ~ N^%.3f (R^2=%.3f); Willard substrate\n", s, e, r2)
		fmt.Printf("guarantees N^0.7925 worst case vs the paper's N^0.500 with Chan's tree\n\n")
	}
}

func e6b() {
	rng := rand.New(rand.NewSource(*flagSeed))
	for _, sub := range []struct {
		name  string
		split spart.Splitter
		want  string
	}{
		{"willard", &spart.Willard2D{}, "<= log4(3)=0.792 guaranteed; ~0.5 typical"},
		{"grid", &spart.Grid2D{G: 4}, "no worst-case guarantee (ablation)"},
	} {
		tb := stats.NewTable("n points", "crossing nodes (mean)", "sqrt(n)")
		var xs, ys []float64
		for _, n := range sizes(1<<14, 1<<16) {
			pts := make([]geom.Point, n)
			for i := range pts {
				pts[i] = geom.Point{rng.Float64(), rng.Float64()}
			}
			tree := spart.BuildTree(pts, nil, sub.split, 1)
			var total float64
			const reps = 9
			for q := 0; q < reps; q++ {
				hs := workload.RandHalfspaces(rng, 2, 1, 0.5)
				prof := tree.CrossingProfile(geom.NewPolyhedron(hs...))
				for _, c := range prof {
					total += float64(c)
				}
			}
			total /= reps
			xs = append(xs, float64(n))
			ys = append(ys, total)
			tb.AddRow(n, total, math.Sqrt(float64(n)))
		}
		e, _, r2 := stats.FitPowerLaw(xs, ys)
		fmt.Print(tb.String())
		fmt.Printf("%s: fitted crossing nodes ~ n^%.3f (R^2=%.3f); expected %s\n\n",
			sub.name, e, r2, sub.want)
	}
}

func e7() {
	tb := stats.NewTable("N", "ops(OUT=0)", "N^{2/3}", "ops/bound")
	var xs, ys []float64
	for _, n := range sizes(1<<13, 1<<15) {
		// Worst-case-shaped input; the query sphere fits inside the empty
		// slab so OUT = 0 while co-occurrences surround it.
		ds, kws, _ := workload.GenAdversarial(workload.Adversarial{
			Seed: *flagSeed, Objects: n, Dim: 2, K: 2,
		})
		ix, err := core.BuildSRPKW(ds, 2)
		check(err)
		sphere := geom.NewSphere(geom.Point{0.5, 0.5}, (workload.SlabHi-workload.SlabLo)/2-0.006)
		ops, out := meanQueryOps(func(i int) (core.QueryStats, int) {
			ids, st, err := ix.Collect(sphere, kws, core.QueryOpts{})
			check(err)
			return st, len(ids)
		})
		if out != 0 {
			fmt.Printf("WARNING: expected OUT=0, measured %.0f\n", out)
		}
		nn := float64(ds.N())
		bound := math.Pow(nn, 2.0/3)
		xs = append(xs, nn)
		ys = append(ys, ops)
		tb.AddRow(int(nn), ops, bound, ops/bound)
	}
	e, _, r2 := stats.FitPowerLaw(xs, ys)
	fmt.Print(tb.String())
	fmt.Printf("lifted to d+1=3 over the box substrate: fitted ops ~ N^%.3f (R^2=%.3f);\n", e, r2)
	fmt.Printf("paper predicts N^{1-1/(d+1)} = N^0.667 for d > k-1 (here d=2, k=2)\n")
}

func e8() {
	n := 1 << 12
	if *flagQuick {
		n = 1 << 11
	}
	// Integer-grid dataset where half the objects match both query keywords,
	// so every t in the sweep is attainable.
	grng := rand.New(rand.NewSource(*flagSeed))
	objs := make([]dataset.Object, n)
	for i := range objs {
		doc := []dataset.Keyword{dataset.Keyword(3 + grng.Intn(61))}
		if i%2 == 0 {
			doc = append(doc, 1, 2)
		} else {
			doc = append(doc, dataset.Keyword(1+grng.Intn(2)))
		}
		objs[i] = dataset.Object{
			Point: geom.Point{float64(grng.Int63n(1 << 16)), float64(grng.Int63n(1 << 16))},
			Doc:   doc,
		}
	}
	ds := dataset.MustNew(objs)
	ix, err := core.BuildL2NN(ds, 2)
	check(err)
	tb := stats.NewTable("t", "inner ops", "probes", "t^{1/2}")
	var xs, ys []float64
	rng := rand.New(rand.NewSource(*flagSeed + 8))
	for _, t := range []int{1, 4, 16, 64, 256, 1024} {
		var ops, probes float64
		const reps = 5
		for i := 0; i < reps; i++ {
			q := geom.Point{float64(rng.Int63n(1 << 16)), float64(rng.Int63n(1 << 16))}
			_, ns, err := ix.Query(q, t, []dataset.Keyword{1, 2}, core.QueryOpts{})
			check(err)
			ops += float64(ns.Ops)
			probes += float64(ns.Probes)
		}
		ops /= reps
		probes /= reps
		xs = append(xs, float64(t))
		ys = append(ys, ops)
		tb.AddRow(t, ops, probes, math.Sqrt(float64(t)))
	}
	// The bound is log N * (N^{1-1/(d+1)} + N^{1-1/k} t^{1/k}): subtract the
	// t-independent floor before fitting the t exponent.
	floor := ys[0]
	var mx, my []float64
	for i := range xs {
		if xs[i] >= 16 && ys[i] > floor {
			mx = append(mx, xs[i])
			my = append(my, ys[i]-floor)
		}
	}
	e, _, r2 := stats.FitPowerLaw(mx, my)
	fmt.Print(tb.String())
	fmt.Printf("fitted marginal inner ops ~ t^%.3f (R^2=%.3f) above the t-independent\n", e, r2)
	fmt.Printf("floor; paper predicts t^{1/k} = t^0.500 with O(log N) probes\n")
}

func e9() {
	// Term 1: N^{1-1/k} at OUT=0 (already fit in e1). Here: the crossover
	// against the inverted-index baseline as OUT and posting sizes vary.
	n := 1 << 16
	if *flagQuick {
		n = 1 << 14
	}
	tb := stats.NewTable("posting |S_w|", "OUT", "index ops", "baseline ops", "winner")
	for _, part := range []int{n / 64, n / 16, n / 4} {
		for _, out := range []int{0, 64, part / 2} {
			ds, kws, _ := workload.GenPlanted(workload.Planted{
				Seed: *flagSeed + int64(part+out), Objects: n, Dim: 2, K: 2,
				Out: out, Partial: part,
			})
			ix, err := core.BuildKSIFromDataset(ds, 2)
			check(err)
			inv := invidx.Build(ds)
			ids, st, err := ix.Report(kws, core.QueryOpts{})
			check(err)
			if len(ids) != out {
				fmt.Printf("WARNING: OUT drifted: %d != %d\n", len(ids), out)
			}
			base := float64(inv.ScanCost(kws))
			winner := "index"
			if base < float64(st.Ops) {
				winner = "baseline"
			}
			tb.AddRow(part+out, out, float64(st.Ops), base, winner)
		}
	}
	fmt.Print(tb.String())
	fmt.Printf("the index wins whenever OUT is small relative to the posting lists —\n")
	fmt.Printf("exactly the regime Section 1's naive-method critique describes\n")
}

func f1() {
	tb := stats.NewTable("N", "crossing cost (7)", "crossing nodes", "N^{1/2}")
	var xs, ys []float64
	for _, n := range sizes(1<<14, 1<<16) {
		ds := workload.Gen(workload.Config{Seed: *flagSeed, Objects: n, Dim: 2, Vocab: 16, DocLen: 4})
		ix, err := core.BuildORPKW(ds, 2)
		check(err)
		x := float64(ds.Len() / 2)
		line := &geom.Rect{Lo: []float64{x, math.Inf(-1)}, Hi: []float64{x, math.Inf(1)}}
		cost, err := ix.Framework().CrossingCost(line, []dataset.Keyword{0, 1})
		check(err)
		// Also count raw crossing cells of the substrate.
		rng := rand.New(rand.NewSource(*flagSeed))
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Point{float64(i), rng.Float64()}
		}
		tree := spart.BuildTree(pts, nil, &spart.KD{Dim: 2}, 1)
		prof := tree.CrossingProfile(&geom.Rect{Lo: []float64{x, math.Inf(-1)}, Hi: []float64{x, math.Inf(1)}})
		cells := 0
		for _, c := range prof {
			cells += c
		}
		nn := float64(ds.N())
		xs = append(xs, nn)
		ys = append(ys, cost)
		tb.AddRow(int(nn), cost, cells, math.Sqrt(nn))
	}
	e, _, r2 := stats.FitPowerLaw(xs, ys)
	fmt.Print(tb.String())
	fmt.Printf("fitted crossing cost ~ N^%.3f (R^2=%.3f); Lemma 10 predicts O(N^{1-1/k})\n", e, r2)
	fmt.Printf("= N^0.500 at k=2 for any vertical line\n")
}

func f2() {
	n := 1 << 14
	if *flagQuick {
		n = 1 << 12
	}
	ds := workload.Gen(workload.Config{Seed: *flagSeed, Objects: n, Dim: 3, Vocab: 64, DocLen: 5})
	ix, err := core.BuildORPKWHigh(ds, 2)
	check(err)
	rng := rand.New(rand.NewSource(*flagSeed + 2))
	maxPerLevel := map[int]int{}
	for q := 0; q < 50; q++ {
		prof, err := ix.Type2Profile(workload.RandRect(rng, 3, 0.1+rng.Float64()*0.8), []dataset.Keyword{0, 1})
		check(err)
		for lvl, c := range prof {
			if c > maxPerLevel[lvl] {
				maxPerLevel[lvl] = c
			}
		}
	}
	tb := stats.NewTable("level", "max type-2 nodes (50 queries)", "paper bound")
	var levels []int
	for lvl := range maxPerLevel {
		levels = append(levels, lvl)
	}
	sort.Ints(levels)
	for _, lvl := range levels {
		tb.AddRow(lvl, maxPerLevel[lvl], 2)
	}
	fmt.Print(tb.String())
	fmt.Printf("levels=%d (Proposition 1: O(loglog N)); max fanout=%d (Proposition 3:\n",
		ix.Levels(), ix.MaxFanout())
	fmt.Printf("O(N^{1-1/k}) = %.0f)\n", math.Sqrt(float64(ds.N())))
}

func a1() {
	n := 1 << 14
	if *flagQuick {
		n = 1 << 12
	}
	ds, kws, region := workload.GenPlanted(workload.Planted{
		Seed: *flagSeed, Objects: n, Dim: 2, K: 2, Out: 64, Partial: n / 8,
	})
	kd, err := core.BuildORPKW(ds, 2)
	check(err)
	pt, err := core.BuildSPKW(ds, core.SPKWConfig{K: 2})
	check(err)
	hs := region.Halfspaces()
	kdOps, _ := meanQueryOps(func(i int) (core.QueryStats, int) {
		ids, st, err := kd.Collect(region, kws, core.QueryOpts{})
		check(err)
		return st, len(ids)
	})
	ptOps, _ := meanQueryOps(func(i int) (core.QueryStats, int) {
		ids, st, err := pt.CollectConstraints(hs, kws, core.QueryOpts{})
		check(err)
		return st, len(ids)
	})
	tb := stats.NewTable("route", "query ops", "space words", "substrate")
	tb.AddRow("Theorem 1 (kd)", kdOps, kd.Space().TotalWords(64), "rank-space kd-tree")
	tb.AddRow("Theorem 5 (partition)", ptOps, pt.Space().TotalWords(64), "Willard ham-sandwich")
	fmt.Print(tb.String())
	fmt.Printf("both answer the same rectangle queries; the kd route is cheaper per\n")
	fmt.Printf("query (crossing exponent 0.5 vs 0.79), the partition route generalizes\n")
	fmt.Printf("to arbitrary linear constraints (Section 3.5's remark)\n")
}

func a2() {
	n := 1 << 15
	if *flagQuick {
		n = 1 << 13
	}
	tb := stats.NewTable("OUT/posting ratio", "framework ops", "twosi scans", "invidx ops")
	for _, ratio := range []float64{0, 0.01, 0.1, 0.5, 1} {
		part := n / 8
		out := int(ratio * float64(part))
		ds, kws, _ := workload.GenPlanted(workload.Planted{
			Seed: *flagSeed + int64(out), Objects: n, Dim: 2, K: 2, Out: out, Partial: part,
		})
		ix, err := core.BuildKSIFromDataset(ds, 2)
		check(err)
		cp := twosi.Build(ds)
		inv := invidx.Build(ds)
		_, st, err := ix.Report(kws, core.QueryOpts{})
		check(err)
		_, cpSt, err := cp.Report(kws[0], kws[1])
		check(err)
		base := float64(inv.ScanCost(kws))
		tb.AddRow(ratio, float64(st.Ops), float64(cpSt.Scanned)+float64(cpSt.NodesVisited), base)
	}
	fmt.Print(tb.String())
	fmt.Printf("the framework matches its Cohen–Porat ancestor on pure 2-SI (both beat the\n")
	fmt.Printf("merge when OUT is small) while additionally supporting geometry predicates\n")
}

func a3() {
	n := 1 << 16
	if *flagQuick {
		n = 1 << 14
	}
	rng := rand.New(rand.NewSource(*flagSeed))
	tb := stats.NewTable("keyword density", "bitmap ops", "framework ops", "OUT")
	for _, density := range []float64{0.02, 0.1, 0.4} {
		objs := make([]dataset.Object, n)
		for i := range objs {
			doc := []dataset.Keyword{2 + dataset.Keyword(rng.Intn(62))}
			for w := dataset.Keyword(0); w < 2; w++ {
				if rng.Float64() < density {
					doc = append(doc, w)
				}
			}
			objs[i] = dataset.Object{Point: geom.Point{rng.Float64()}, Doc: doc}
		}
		ds, err := dataset.New(objs)
		check(err)
		bp, err := bitpack.Build(ds)
		check(err)
		fw, err := core.BuildORPKW(ds, 2)
		check(err)
		kws := []dataset.Keyword{0, 1}
		var bpOps, fwOps, outAvg float64
		const reps = 9
		for i := 0; i < reps; i++ {
			lo := rng.Float64() * 0.8
			hi := lo + 0.1
			_, bst, err := bp.Collect(lo, hi, kws)
			check(err)
			ids, fst, err := fw.Collect(&geom.Rect{Lo: []float64{lo}, Hi: []float64{hi}}, kws, core.QueryOpts{})
			check(err)
			bpOps += float64(bst.WordOps + bst.ListOps)
			fwOps += float64(fst.Ops)
			outAvg += float64(len(ids))
		}
		tb.AddRow(density, bpOps/reps, fwOps/reps, outAvg/reps)
	}
	fmt.Print(tb.String())
	fmt.Printf("dense keywords favor the word-parallel route (O(n k / w + OUT)); the\n")
	fmt.Printf("framework is output-insensitive and wins when lists are long but OUT small\n")
}

func spaceAudit() {
	n := 1 << 14
	if *flagQuick {
		n = 1 << 12
	}
	ds2 := workload.Gen(workload.Config{Seed: *flagSeed, Objects: n, Dim: 2, Vocab: 512, DocLen: 6})
	ds3 := workload.Gen(workload.Config{Seed: *flagSeed, Objects: n / 4, Dim: 3, Vocab: 512, DocLen: 6})
	grid := workload.Gen(workload.Config{Seed: *flagSeed, Objects: n / 4, Dim: 2, Vocab: 512, DocLen: 6, Points: "grid"})
	tb := stats.NewTable("index", "N", "total words", "words/N", "tensor bits", "pivot max")
	add := func(name string, nn int64, sp core.SpaceBreakdown, piv int) {
		tb.AddRow(name, nn, sp.TotalWords(64), float64(sp.TotalWords(64))/float64(nn), sp.TensorBits, piv)
	}
	orp, err := core.BuildORPKW(ds2, 2)
	check(err)
	add("ORP-KW d=2 (Thm 1)", ds2.N(), orp.Space(), orp.Framework().MaxPivots())
	hi, err := core.BuildORPKWHigh(ds3, 2)
	check(err)
	add("ORP-KW d=3 (Thm 2)", ds3.N(), hi.Space(), 0)
	sp, err := core.BuildSPKW(ds2, core.SPKWConfig{K: 2})
	check(err)
	add("LC-KW d=2 (Thm 5)", ds2.N(), sp.Space(), sp.Framework().MaxPivots())
	srp, err := core.BuildSRPKW(ds2, 2)
	check(err)
	add("SRP-KW d=2 (Cor 6)", ds2.N(), srp.Space(), 0)
	l2, err := core.BuildL2NN(grid, 2)
	check(err)
	add("L2NN-KW (Cor 7)", grid.N(), l2.Space(), 0)
	fmt.Print(tb.String())
	fmt.Printf("all audits in words of the paper's RAM model; Table 1 predicts O(N) for\n")
	fmt.Printf("d=2 rows and O(N loglogN) for the d=3 dimension-reduction index\n")
}

func plannerExp() {
	n := 1 << 14
	if *flagQuick {
		n = 1 << 12
	}
	ds := workload.Gen(workload.Config{Seed: *flagSeed, Objects: n, Dim: 2, Vocab: 400, DocLen: 5, ZipfS: 1.6})
	p, err := core.BuildPlanner(ds, 2)
	check(err)
	inv := invidx.Build(ds)
	tb := stats.NewTable("regime", "route chosen", "est cost", "actual results")
	cases := []struct {
		name string
		q    *geom.Rect
		ws   []dataset.Keyword
	}{
		{"rare keyword, big region", workload.RandRect(rand.New(rand.NewSource(1)), 2, 0.9),
			[]dataset.Keyword{0, rarestKeyword(inv, ds)},
		},
		{"frequent keywords, tiny region", geom.NewRect([]float64{0.5, 0.5}, []float64{0.503, 0.503}),
			[]dataset.Keyword{0, 1},
		},
		{"frequent keywords, big region", workload.RandRect(rand.New(rand.NewSource(2)), 2, 0.8),
			[]dataset.Keyword{0, 1},
		},
	}
	for _, c := range cases {
		got, plan, err := p.Collect(c.q, c.ws)
		check(err)
		tb.AddRow(c.name, string(plan.Route), plan.Estimates[plan.Route], len(got))
		// Cross-check against the oracle.
		want := ds.Filter(c.q, c.ws)
		if len(want) != len(got) {
			fmt.Printf("WARNING: route %s disagreed with the oracle (%d vs %d)\n",
				plan.Route, len(got), len(want))
		}
	}
	// The framework's regime: long, rarely co-occurring posting lists over a
	// selective region (the adversarial workload).
	adv, advKws, slab := workload.GenAdversarial(workload.Adversarial{Seed: *flagSeed, Objects: n, Dim: 2, K: 2})
	pAdv, err := core.BuildPlanner(adv, 2)
	check(err)
	got, plan, err := pAdv.Collect(slab, advKws)
	check(err)
	tb.AddRow("long disjoint postings, slab", string(plan.Route), plan.Estimates[plan.Route], len(got))
	fmt.Print(tb.String())
	fmt.Printf("the planner applies the paper's cost formulas per query: posting scans for\n")
	fmt.Printf("rare terms, geometric filters for tiny regions, the framework when postings\n")
	fmt.Printf("are long but the estimated intersection is small\n")
}

// rarestKeyword returns the least frequent present keyword above id 1.
func rarestKeyword(inv *invidx.Index, ds *dataset.Dataset) dataset.Keyword {
	best, bestDF := dataset.Keyword(2), 1<<30
	for w := 2; w < ds.W(); w++ {
		if df := inv.DocFrequency(dataset.Keyword(w)); df > 0 && df < bestDF {
			best, bestDF = dataset.Keyword(w), df
		}
	}
	return best
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchkw:", err)
		os.Exit(1)
	}
}
