// Command kwscd serves a keyword-search-with-structured-constraints corpus
// over HTTP/JSON. The dataset is partitioned across N shards (content hash
// or rank-space range on dimension 0); queries scatter to every shard under
// one shared deadline and gather into a deterministic merged response,
// writes route to the owning shard and are acknowledged after its WAL ack.
// Admission control (per-client token buckets, a global in-flight window
// with a degraded band, 429 load shedding) keeps the server answering
// predictably under overload.
//
// Serve a synthetic static corpus, 4 shards, range-partitioned:
//
//	kwscd -addr :8080 -mode static -shards 4 -partition range -n 100000
//
// Serve a durable dynamic corpus (re-running recovers the WALs):
//
//	kwscd -addr :8080 -mode dynamic -dir /var/lib/kwsc -shards 4
//
// Run a read replica of that primary, and tell the primary about it so
// bounded-staleness reads fail over across the group:
//
//	kwscd -addr :8081 -dir /var/lib/kwsc-replica -follow http://primary:8080
//	kwscd -addr :8080 -mode dynamic -dir /var/lib/kwsc -shards 4 \
//	      -replicas http://replica:8081
//
// Endpoints: POST /v1/query, POST /v1/write, GET /healthz, GET /metrics
// (Prometheus), GET /debug/stats, plus the /repl/v1 replication surface.
// See DESIGN.md §14 (serving) and §16 (replication).
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"kwsc"
	"kwsc/internal/serve"
	"kwsc/internal/workload"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		mode      = flag.String("mode", "static", "corpus mode: static (read-only) or dynamic (insert/delete)")
		dir       = flag.String("dir", "", "durable WAL root for dynamic mode (empty = in-memory, lost on exit)")
		shards    = flag.Int("shards", 4, "number of partitions")
		partition = flag.String("partition", "hash", "partitioning: hash or range (on dimension 0)")
		flat      = flag.Bool("flat", false, "static mode: build shards in the cache-conscious flat layout")

		n      = flag.Int("n", 50_000, "synthetic corpus size")
		dim    = flag.Int("dim", 2, "dimensionality")
		k      = flag.Int("k", 2, "query keyword arity")
		vocab  = flag.Int("vocab", 1000, "synthetic vocabulary size")
		doclen = flag.Int("doclen", 6, "synthetic mean document length")
		seed   = flag.Int64("seed", 1, "synthetic corpus seed")

		maxInflight  = flag.Int("max-inflight", 0, "global in-flight hard cap (0 = unlimited)")
		softInflight = flag.Int("soft-inflight", 0, "in-flight level above which queries run degraded (0 = off)")
		clientRate   = flag.Float64("client-rate", 0, "per-client token refill rate, req/s (0 = no quota)")
		clientBurst  = flag.Float64("client-burst", 0, "per-client bucket capacity (0 = rate)")

		timeout = flag.Duration("timeout", 2*time.Second, "default query timeout when the request carries none")
		budget  = flag.Int64("degraded-budget", 4096, "per-shard node budget forced onto degraded-band queries")
		fsync   = flag.String("fsync", "interval", "durable WAL fsync policy: everyop, interval, or none")

		paged    = flag.Bool("paged-recovery", false, "dynamic mode: serve checkpoints through the pager (cold start = map + WAL tail)")
		noMmap   = flag.Bool("paged-pread", false, "with -paged-recovery: use pread + buffer pool instead of mmap")
		capPages = flag.Int("paged-cap", 0, "with -paged-pread: buffer-pool capacity in pages per shard (0 = default)")

		follow       = flag.String("follow", "", "run as a read-only replica of the primary at this base URL (requires -dir; overrides -mode)")
		followPoll   = flag.Duration("follow-poll", 0, "replica WAL tail poll cadence (0 = default)")
		replicas     = flag.String("replicas", "", "comma-separated follower base URLs; bounded-staleness reads fail over across them")
		hedgeAfter   = flag.Duration("hedge-after", 0, "hedge a replica read to the next candidate after this latency (0 = no hedging)")
		replicaProbe = flag.Duration("replica-probe", 0, "replica health-probe cadence (0 = default)")
	)
	flag.Parse()

	pmode, err := serve.ParsePartitionMode(*partition)
	if err != nil {
		log.Fatalf("kwscd: %v", err)
	}
	cfg := serve.Config{
		Shards:    *shards,
		Partition: pmode,
		Dim:       *dim,
		K:         *k,
		Admission: serve.AdmissionConfig{
			MaxInflight:  *maxInflight,
			SoftInflight: *softInflight,
			ClientRate:   *clientRate,
			ClientBurst:  *clientBurst,
		},
		DefaultTimeout:     *timeout,
		DegradedNodeBudget: *budget,
		FlatLayout:         *flat,
	}
	switch *fsync {
	case "everyop":
		cfg.DurableOptions = append(cfg.DurableOptions, kwsc.WithFsyncPolicy(kwsc.FsyncEveryOp))
	case "interval":
		cfg.DurableOptions = append(cfg.DurableOptions, kwsc.WithFsyncPolicy(kwsc.FsyncInterval))
	case "none":
		cfg.DurableOptions = append(cfg.DurableOptions, kwsc.WithFsyncPolicy(kwsc.FsyncNone))
	default:
		log.Fatalf("kwscd: unknown -fsync %q (want everyop, interval, or none)", *fsync)
	}
	if *paged {
		cfg.DurableOptions = append(cfg.DurableOptions, kwsc.WithPagedRecovery(kwsc.PagedBaseOptions{
			NoMmap:   *noMmap,
			CapPages: *capPages,
		}))
	}

	if *replicas != "" {
		cfg.ReplicaURLs = strings.Split(*replicas, ",")
	}
	cfg.HedgeAfter = *hedgeAfter
	cfg.ReplicaProbe = *replicaProbe
	cfg.FollowerPoll = *followPoll

	var s *serve.Server
	start := time.Now()
	servedMode := *mode
	if *follow != "" {
		if *dir == "" {
			log.Fatal("kwscd: -follow needs -dir for the replica's local durable state")
		}
		servedMode = "follower"
		s, err = serve.NewFollower(*dir, strings.TrimRight(*follow, "/"), cfg)
	} else {
		objs := genCorpus(*n, *dim, *vocab, *doclen, *seed)
		switch *mode {
		case "static":
			if len(objs) == 0 {
				log.Fatal("kwscd: -mode static needs a corpus; pass -n > 0")
			}
			s, err = serve.NewStatic(objs, cfg)
		case "dynamic":
			s, err = serve.NewDynamic(*dir, objs, cfg)
		default:
			log.Fatalf("kwscd: unknown -mode %q (want static or dynamic)", *mode)
		}
	}
	if err != nil {
		log.Fatalf("kwscd: building shards: %v", err)
	}
	defer s.Close()
	log.Printf("kwscd: %s corpus, %d objects live, %d shards (%s partition), built in %v",
		servedMode, s.Live(), s.NumShards(), pmode, time.Since(start).Round(time.Millisecond))

	srv := &http.Server{Addr: *addr, Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("kwscd: listening on %s", *addr)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		log.Print("kwscd: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("kwscd: shutdown: %v", err)
		}
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("kwscd: serve: %v", err)
		}
	}
	if err := s.Close(); err != nil {
		log.Fatalf("kwscd: closing shards: %v", err)
	}
	log.Print("kwscd: clean shutdown")
}

// genCorpus builds the synthetic seed corpus; n <= 0 means start empty
// (dynamic mode only — every object then arrives through /v1/write).
func genCorpus(n, dim, vocab, doclen int, seed int64) []kwsc.Object {
	if n <= 0 {
		return nil
	}
	ds := workload.Gen(workload.Config{
		Seed: seed, Objects: n, Dim: dim, Vocab: vocab, DocLen: doclen,
	})
	objs := make([]kwsc.Object, ds.Len())
	for i := range objs {
		objs[i] = *ds.Object(int32(i))
	}
	return objs
}
