// Command kwsload drives a running kwscd with a closed-loop synthetic
// workload and reports throughput, tail latency, and goodput. A concurrency
// sweep (-sweep) produces the goodput-under-overload curve: each step runs C
// closed-loop clients for -duration, counting 200s (goodput), 429s (shed),
// and errors, with p50/p99/p999 over the successful responses. Results are
// printed as a table and optionally written as a benchfmt snapshot (-out)
// for committing next to micro-benchmark baselines.
//
//	kwsload -addr localhost:8080 -sweep 1,2,4,8,16 -duration 5s -out BENCH_serve.json
//
// The generator discovers the server's dimensionality and keyword arity from
// /debug/stats, so requests always validate against the serving index.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"slices"
	"strconv"
	"strings"
	"sync"
	"time"

	"kwsc"
	"kwsc/internal/benchfmt"
)

func main() {
	var (
		addr      = flag.String("addr", "localhost:8080", "kwscd host:port")
		sweep     = flag.String("sweep", "1,2,4,8", "comma-separated closed-loop client counts")
		duration  = flag.Duration("duration", 5*time.Second, "measured length of each sweep step")
		waitReady = flag.Duration("wait-ready", 0, "poll /healthz up to this long before starting (0 = no wait)")

		vocab     = flag.Int("vocab", 1000, "keyword id range for generated queries (match the server corpus)")
		writeFrac = flag.Float64("writes", 0, "fraction of requests that are inserts (dynamic corpora only)")
		limit     = flag.Int("limit", 0, "per-query result limit (0 = all)")
		timeoutMs = flag.Int64("timeout-ms", 0, "per-query timeout knob (0 = server default)")
		staleMs   = flag.Int64("max-staleness", 0, "per-query max_staleness_ms: lets the server answer from cached snapshots and replicas no older than this (0 = always fresh)")
		seed      = flag.Int64("seed", 1, "workload seed")
		name      = flag.String("name", "query", "step label prefix in the snapshot")
		out       = flag.String("out", "", "write a benchfmt snapshot with the serve records here")
	)
	flag.Parse()
	base := "http://" + *addr

	if *waitReady > 0 {
		if err := waitHealthy(base, *waitReady); err != nil {
			log.Fatalf("kwsload: %v", err)
		}
	}
	dim, k, err := serverShape(base)
	if err != nil {
		log.Fatalf("kwsload: discovering server shape: %v", err)
	}

	var concs []int
	for _, f := range strings.Split(*sweep, ",") {
		c, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || c <= 0 {
			log.Fatalf("kwsload: bad -sweep entry %q", f)
		}
		concs = append(concs, c)
	}

	fmt.Printf("%-14s %6s %10s %10s %10s %8s %8s %9s %9s %9s\n",
		"step", "conc", "qps", "goodput", "shed/s", "errors", "degraded", "p50(us)", "p99(us)", "p999(us)")
	var records []benchfmt.ServeRecord
	totalOK := int64(0)
	for _, c := range concs {
		rec := runStep(base, stepConfig{
			name:      fmt.Sprintf("%s-c%d", *name, c),
			conc:      c,
			duration:  *duration,
			dim:       dim,
			k:         k,
			vocab:     *vocab,
			writeFrac: *writeFrac,
			limit:     *limit,
			timeoutMs: *timeoutMs,
			staleMs:   *staleMs,
			seed:      *seed + int64(c)*1000,
		})
		records = append(records, rec)
		totalOK += rec.OK
		fmt.Printf("%-14s %6d %10.1f %10.1f %10.1f %8d %8d %9d %9d %9d\n",
			rec.Name, rec.Concurrency, rec.QPS, rec.GoodputQPS,
			float64(rec.Shed)/rec.DurationSec, rec.Errors, rec.Degraded,
			rec.P50Us, rec.P99Us, rec.P999Us)
	}

	if *out != "" {
		snap := benchfmt.SnapshotFile{Serve: records}
		data, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			log.Fatalf("kwsload: %v", err)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			log.Fatalf("kwsload: %v", err)
		}
		log.Printf("kwsload: wrote %d serve records to %s", len(records), *out)
	}
	if totalOK == 0 {
		log.Fatal("kwsload: zero goodput — no request succeeded")
	}
}

func waitHealthy(base string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server not healthy within %v: %v", timeout, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// serverShape reads dimensionality and keyword arity from /debug/stats.
func serverShape(base string) (dim, k int, err error) {
	resp, err := http.Get(base + "/debug/stats")
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	var stats struct {
		Dim int `json:"dim"`
		K   int `json:"k"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		return 0, 0, err
	}
	if stats.Dim <= 0 || stats.K <= 0 {
		return 0, 0, fmt.Errorf("implausible server shape dim=%d k=%d", stats.Dim, stats.K)
	}
	return stats.Dim, stats.K, nil
}

type stepConfig struct {
	name      string
	conc      int
	duration  time.Duration
	dim, k    int
	vocab     int
	writeFrac float64
	limit     int
	timeoutMs int64
	staleMs   int64
	seed      int64
}

// workerResult accumulates one closed-loop client's step counts.
type workerResult struct {
	requests, ok, shed, errs int64
	degraded, truncated      int64
	latencies                []int64 // microseconds, OK responses only
}

func runStep(base string, cfg stepConfig) benchfmt.ServeRecord {
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        cfg.conc * 2,
		MaxIdleConnsPerHost: cfg.conc * 2,
	}}
	defer client.CloseIdleConnections()

	results := make([]workerResult, cfg.conc)
	stop := time.Now().Add(cfg.duration)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.seed + int64(w)))
			clientName := fmt.Sprintf("kwsload-%d", w)
			res := &results[w]
			for time.Now().Before(stop) {
				var path string
				var body any
				if cfg.writeFrac > 0 && rng.Float64() < cfg.writeFrac {
					path, body = kwsc.PathWrite, randWrite(rng, cfg, clientName)
				} else {
					path, body = kwsc.PathQuery, randQuery(rng, cfg, clientName)
				}
				t0 := time.Now()
				status, resp := post(client, base+path, body)
				el := time.Since(t0).Microseconds()
				res.requests++
				switch {
				case status == http.StatusOK:
					res.ok++
					res.latencies = append(res.latencies, el)
					if resp.Degraded {
						res.degraded++
					}
					if resp.Truncated {
						res.truncated++
					}
				case status == http.StatusTooManyRequests:
					res.shed++
				default:
					res.errs++
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	rec := benchfmt.ServeRecord{Name: cfg.name, Concurrency: cfg.conc, DurationSec: elapsed}
	var all []int64
	for _, r := range results {
		rec.Requests += r.requests
		rec.OK += r.ok
		rec.Shed += r.shed
		rec.Errors += r.errs
		rec.Degraded += r.degraded
		rec.Truncated += r.truncated
		all = append(all, r.latencies...)
	}
	rec.QPS = float64(rec.Requests) / elapsed
	rec.GoodputQPS = float64(rec.OK) / elapsed
	slices.Sort(all)
	rec.P50Us = percentile(all, 0.50)
	rec.P99Us = percentile(all, 0.99)
	rec.P999Us = percentile(all, 0.999)
	return rec
}

// post sends one JSON request; it returns 0 on transport failure. The
// response body is decoded just enough to read the degraded/truncated flags.
func post(client *http.Client, url string, body any) (int, kwsc.QueryResponse) {
	buf, err := json.Marshal(body)
	if err != nil {
		return 0, kwsc.QueryResponse{}
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		return 0, kwsc.QueryResponse{}
	}
	defer resp.Body.Close()
	var qr kwsc.QueryResponse
	if resp.StatusCode == http.StatusOK {
		json.NewDecoder(resp.Body).Decode(&qr)
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp.StatusCode, qr
}

func randKeywords(rng *rand.Rand, vocab, k int) []kwsc.Keyword {
	// Weight toward the frequent (low-id) half so intersections are
	// non-trivial, mirroring internal/workload.RandKeywords.
	window := 1 + vocab/4
	if window < k {
		window = vocab
	}
	seen := make(map[kwsc.Keyword]bool, k)
	out := make([]kwsc.Keyword, 0, k)
	for len(out) < k {
		w := kwsc.Keyword(rng.Intn(window))
		if seen[w] {
			continue
		}
		seen[w] = true
		out = append(out, w)
	}
	return out
}

func randQuery(rng *rand.Rand, cfg stepConfig, client string) *kwsc.QueryRequest {
	req := &kwsc.QueryRequest{
		Client:         client,
		Keywords:       randKeywords(rng, cfg.vocab, cfg.k),
		Limit:          cfg.limit,
		TimeoutMs:      cfg.timeoutMs,
		MaxStalenessMs: cfg.staleMs,
	}
	switch rng.Intn(3) {
	case 0: // rectangle
		side := 0.05 + rng.Float64()*0.4
		lo := make([]float64, cfg.dim)
		hi := make([]float64, cfg.dim)
		for j := range lo {
			c := rng.Float64() * (1 - side)
			lo[j], hi[j] = c, c+side
		}
		req.Rect = &kwsc.RectWire{Lo: lo, Hi: hi}
	case 1: // sphere
		center := make([]float64, cfg.dim)
		for j := range center {
			center[j] = rng.Float64()
		}
		req.Sphere = &kwsc.SphereWire{Center: center, Radius: 0.05 + rng.Float64()*0.2}
	}
	return req
}

func randWrite(rng *rand.Rand, cfg stepConfig, client string) *kwsc.WriteRequest {
	point := make([]float64, cfg.dim)
	for j := range point {
		point[j] = rng.Float64()
	}
	return &kwsc.WriteRequest{
		Client: client,
		Op:     kwsc.OpInsert,
		Point:  point,
		Doc:    randKeywords(rng, cfg.vocab, cfg.k+1),
	}
}

// percentile returns the q-quantile of sorted microsecond samples (nearest
// rank; 0 when empty).
func percentile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
