// Command kwsearch is an interactive demo over a generated hotel catalog:
// it builds every index of the library on the same dataset and answers
// queries typed on stdin.
//
// Usage:
//
//	kwsearch [-n objects] [-seed n]
//
// Commands (keywords are integer ids; 'help' lists everything):
//
//	range x1 x2 y1 y2 w1 w2      ORP-KW: rectangle + 2 keywords
//	near x y t w1 w2             L∞NN-KW: t nearest + 2 keywords
//	ball x y r w1 w2             SRP-KW: radius + 2 keywords
//	line a b c w1 w2             LC-KW: a*x + b*y <= c + 2 keywords
//	isect w1 w2                  k-SI: pure keyword intersection
//	stats                        dataset and index statistics
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"kwsc"
	"kwsc/internal/workload"
)

var (
	flagN    = flag.Int("n", 20000, "number of objects in the generated catalog")
	flagSeed = flag.Int64("seed", 1, "generator seed")
)

func main() {
	flag.Parse()
	fmt.Printf("generating %d objects...\n", *flagN)
	ds := workload.Gen(workload.Config{
		Seed: *flagSeed, Objects: *flagN, Dim: 2, Vocab: 64, DocLen: 5,
	})
	fmt.Printf("building indexes (N=%d, W=%d)...\n", ds.N(), ds.W())
	orp, err := kwsc.NewORPKW(ds, 2)
	fatal(err)
	nn, err := kwsc.NewLinfNN(ds, 2)
	fatal(err)
	srp, err := kwsc.NewSRPKW(ds, 2)
	fatal(err)
	lc, err := kwsc.NewLCKW(ds, kwsc.LCKWConfig{K: 2})
	fatal(err)
	ksi, err := kwsc.NewKSIFromDataset(ds, 2)
	fatal(err)
	fmt.Println("ready; type 'help' for commands, coordinates are in [0,1)")

	sc := bufio.NewScanner(os.Stdin)
	for fmt.Print("> "); sc.Scan(); fmt.Print("> ") {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "help":
			fmt.Println("range x1 x2 y1 y2 w1 w2 | near x y t w1 w2 | ball x y r w1 w2")
			fmt.Println("line a b c w1 w2 | isect w1 w2 | stats | quit")
		case "quit", "exit":
			return
		case "stats":
			sp := orp.Space()
			fmt.Printf("objects=%d N=%d W=%d dim=%d\n", ds.Len(), ds.N(), ds.W(), ds.Dim())
			fmt.Printf("ORP-KW: %d nodes, %d words, height %d\n",
				orp.Framework().NumNodes(), sp.TotalWords(64), orp.Framework().Height())
		case "range":
			args, ok := floats(fields[1:], 6)
			if !ok {
				continue
			}
			q := kwsc.NewRect([]float64{args[0], args[2]}, []float64{args[1], args[3]})
			ids, st, err := orp.Collect(q, kws(args[4], args[5]), kwsc.QueryOpts{})
			report(ids, st.Ops, err)
		case "near":
			args, ok := floats(fields[1:], 5)
			if !ok {
				continue
			}
			res, ns, err := nn.Query(kwsc.Point{args[0], args[1]}, int(args[2]), kws(args[3], args[4]))
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			for _, r := range res {
				p := ds.Point(r.ID)
				fmt.Printf("  #%d at (%.3f, %.3f) dist %.4f\n", r.ID, p[0], p[1], r.Dist)
			}
			fmt.Printf("  (%d probes)\n", ns.Probes)
		case "ball":
			args, ok := floats(fields[1:], 5)
			if !ok {
				continue
			}
			s := kwsc.NewSphere(kwsc.Point{args[0], args[1]}, args[2])
			ids, st, err := srp.Collect(s, kws(args[3], args[4]), kwsc.QueryOpts{})
			report(ids, st.Ops, err)
		case "line":
			args, ok := floats(fields[1:], 5)
			if !ok {
				continue
			}
			hs := []kwsc.Halfspace{{Coef: []float64{args[0], args[1]}, Bound: args[2]}}
			var ids []int32
			st, err := lc.QueryConstraints(hs, kws(args[3], args[4]), kwsc.QueryOpts{},
				func(id int32) { ids = append(ids, id) })
			report(ids, st.Ops, err)
		case "isect":
			args, ok := floats(fields[1:], 2)
			if !ok {
				continue
			}
			ids, st, err := ksi.Report(kws(args[0], args[1]), kwsc.QueryOpts{})
			report(ids, st.Ops, err)
		default:
			fmt.Println("unknown command; type 'help'")
		}
	}
}

func kws(a, b float64) []kwsc.Keyword {
	return []kwsc.Keyword{kwsc.Keyword(a), kwsc.Keyword(b)}
}

func floats(fields []string, want int) ([]float64, bool) {
	if len(fields) != want {
		fmt.Printf("expected %d arguments, got %d\n", want, len(fields))
		return nil, false
	}
	out := make([]float64, want)
	for i, f := range fields {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			fmt.Println("bad number:", f)
			return nil, false
		}
		out[i] = v
	}
	return out, true
}

func report(ids []int32, ops int64, err error) {
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("  %d results (%d work units)", len(ids), ops)
	if len(ids) > 0 {
		fmt.Printf("; first ids: ")
		for i, id := range ids {
			if i == 8 {
				fmt.Print("...")
				break
			}
			fmt.Printf("%d ", id)
		}
	}
	fmt.Println()
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "kwsearch:", err)
		os.Exit(1)
	}
}
