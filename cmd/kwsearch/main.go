// Command kwsearch is an interactive demo over a generated hotel catalog:
// it builds every index of the library on the same dataset and answers
// queries typed on stdin.
//
// Usage:
//
//	kwsearch [-n objects] [-seed n] [-durable dir] [-paged file] [-paged-pread] [-paged-recovery]
//
// Commands (keywords are integer ids; 'help' lists everything):
//
//	range x1 x2 y1 y2 w1 w2      ORP-KW: rectangle + 2 keywords
//	near x y t w1 w2             L∞NN-KW: t nearest + 2 keywords
//	ball x y r w1 w2             SRP-KW: radius + 2 keywords
//	line a b c w1 w2             LC-KW: a*x + b*y <= c + 2 keywords
//	isect w1 w2                  k-SI: pure keyword intersection
//	budget nodes                 bound every query to a node-visit budget
//	stats                        dataset and index statistics
//
// With -durable dir, a crash-safe dynamic index rooted at dir is opened
// (recovering any prior state) and five more commands appear:
//
//	insert x y w1 w2             log + apply an insert; prints the handle
//	del handle                   log + apply a delete
//	drange x1 x2 y1 y2 w1 w2     query the durable index (live head)
//	checkpoint                   snapshot now and truncate the log
//	snapshot                     pin the current state for repeatable reads
//	snapshot x1 x2 y1 y2 w1 w2   query the pinned view; later inserts and
//	                             deletes do not change its answers
//
// Malformed commands — wrong argument counts, unparsable numbers, inverted
// or NaN bounds — print an error and re-prompt; the session never exits on
// bad input.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"kwsc"
	"kwsc/internal/workload"
)

var (
	flagN       = flag.Int("n", 20000, "number of objects in the generated catalog")
	flagSeed    = flag.Int64("seed", 1, "generator seed")
	flagDurable = flag.String("durable", "", "directory of a durable dynamic index (created or recovered); enables insert/del/drange/checkpoint/snapshot")
	flagPaged   = flag.String("paged", "", "file path: save the ORP-KW index there as a paged container and serve range queries from the mapping (out-of-core mode); 'pages' shows buffer-pool stats")
	flagPread   = flag.Bool("paged-pread", false, "with -paged: pread-backed access instead of mmap")
	flagPagedRe = flag.Bool("paged-recovery", false, "with -durable: serve the newest checkpoint in place (map + WAL-tail replay) instead of decoding it")
)

// session holds the indexes plus the interactive execution policy.
type session struct {
	ds   *kwsc.Dataset
	orp  *kwsc.ORPKW
	nn   *kwsc.LinfNN
	srp  *kwsc.SRPKW
	lc   *kwsc.LCKW
	ksi  *kwsc.KSI
	dur  *kwsc.DurableORPKW
	snap *kwsc.DynSnapshot // view pinned by the snapshot command
	pol  kwsc.ExecPolicy
}

func main() {
	flag.Parse()
	fmt.Printf("generating %d objects...\n", *flagN)
	ds := workload.Gen(workload.Config{
		Seed: *flagSeed, Objects: *flagN, Dim: 2, Vocab: 64, DocLen: 5,
	})
	fmt.Printf("building indexes (N=%d, W=%d)...\n", ds.N(), ds.W())
	s := &session{ds: ds}
	var err error
	s.orp, err = kwsc.NewORPKW(ds, 2, kwsc.WithFlatLayout())
	fatal(err)
	if *flagPaged != "" {
		fatal(kwsc.SavePagedORPKW(*flagPaged, s.orp))
		paged, h, err := kwsc.OpenPagedORPKW(*flagPaged, kwsc.PagedFileOptions{NoMmap: *flagPread})
		fatal(err)
		defer h.Close()
		s.orp = paged // range queries now read through the page cache
		mode := "mmap"
		if !h.Mapped() {
			mode = "pread"
		}
		fmt.Printf("serving ORP-KW out of core from %q (%s)\n", *flagPaged, mode)
	}
	s.nn, err = kwsc.NewLinfNN(ds, 2)
	fatal(err)
	s.srp, err = kwsc.NewSRPKW(ds, 2)
	fatal(err)
	s.lc, err = kwsc.NewLCKW(ds, kwsc.LCKWConfig{K: 2})
	fatal(err)
	s.ksi, err = kwsc.NewKSIFromDataset(ds, 2)
	fatal(err)
	if *flagDurable != "" {
		var dopts []kwsc.DurableOption
		if *flagPagedRe {
			dopts = append(dopts, kwsc.WithPagedRecovery(kwsc.PagedBaseOptions{}))
		}
		s.dur, err = kwsc.OpenDurable(*flagDurable, 2, 2, dopts...)
		fatal(err)
		defer s.dur.Close()
		fmt.Printf("durable index %q recovered: %d live objects, %d logged ops\n",
			*flagDurable, s.dur.Len(), s.dur.LastSeq())
	}
	// Keep the most expensive queries of the session for the slow command.
	kwsc.EnableSlowLog(16, 1)
	fmt.Println("ready; type 'help' for commands, coordinates are in [0,1)")

	sc := bufio.NewScanner(os.Stdin)
	for fmt.Print("> "); sc.Scan(); fmt.Print("> ") {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		if fields[0] == "quit" || fields[0] == "exit" {
			return
		}
		if err := s.dispatch(fields); err != nil {
			fmt.Println("error:", err)
		}
	}
}

// dispatch runs one command, converting every failure — including a panic
// escaping an index — into an error for the prompt loop to print.
func (s *session) dispatch(fields []string) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("internal failure: %v", r)
		}
	}()
	opts := kwsc.QueryOpts{Policy: s.pol}
	switch fields[0] {
	case "help":
		fmt.Println("range x1 x2 y1 y2 w1 w2 | near x y t w1 w2 | ball x y r w1 w2")
		fmt.Println("line a b c w1 w2 | isect w1 w2 | budget nodes | stats | metrics | pages | slow | quit")
		if s.dur != nil {
			fmt.Println("insert x y w1 w2 | del handle | drange x1 x2 y1 y2 w1 w2 | checkpoint")
			fmt.Println("snapshot [x1 x2 y1 y2 w1 w2]  (bare: pin current state; with args: query the pin)")
		} else {
			fmt.Println("(start with -durable <dir> for insert/del/drange/checkpoint/snapshot)")
		}
	case "stats":
		sp := s.orp.Space()
		fmt.Printf("objects=%d N=%d W=%d dim=%d\n", s.ds.Len(), s.ds.N(), s.ds.W(), s.ds.Dim())
		fmt.Printf("ORP-KW: %d nodes, %d words, height %d\n",
			s.orp.Framework().NumNodes(), sp.TotalWords(64), s.orp.Framework().Height())
		if s.pol.NodeBudget > 0 {
			fmt.Printf("session node budget: %d\n", s.pol.NodeBudget)
		}
		printSessionMetrics()
	case "metrics":
		// Full registry dump in the Prometheus text format.
		if err := kwsc.WriteMetricsPrometheus(os.Stdout); err != nil {
			return err
		}
	case "pages":
		printPagerStats()
	case "slow":
		entries := kwsc.SlowQueries()
		if len(entries) == 0 {
			fmt.Println("slow-query log is empty (it keeps the top 16 queries by work)")
		}
		for i, e := range entries {
			fmt.Printf("  %2d. [%s.%s] ops=%d nodes=%d %v outcome=%s %s\n",
				i+1, e.Family, e.Op, e.Ops, e.Nodes, e.Elapsed, e.Outcome, e.Query)
		}
	case "budget":
		args, err := floats(fields[1:], 1)
		if err != nil {
			return err
		}
		if args[0] < 0 {
			return fmt.Errorf("budget must be >= 0 (0 removes the bound), got %v", args[0])
		}
		s.pol.NodeBudget = int64(args[0])
		if s.pol.NodeBudget == 0 {
			fmt.Println("node budget removed")
		} else {
			fmt.Printf("queries now stop after %d node visits (partial results are reported)\n",
				s.pol.NodeBudget)
		}
	case "range":
		args, err := floats(fields[1:], 6)
		if err != nil {
			return err
		}
		// A struct literal, not kwsc.NewRect: the facade validation turns
		// inverted or NaN bounds into a printable error instead of a panic.
		q := &kwsc.Rect{Lo: []float64{args[0], args[2]}, Hi: []float64{args[1], args[3]}}
		ids, st, err := s.orp.Collect(q, kws(args[4], args[5]), opts)
		report(ids, st.Ops, err)
	case "near":
		args, err := floats(fields[1:], 5)
		if err != nil {
			return err
		}
		res, ns, err := s.nn.Query(kwsc.Point{args[0], args[1]}, int(args[2]), kws(args[3], args[4]),
			kwsc.QueryOpts{Policy: s.pol})
		if err != nil && len(res) == 0 {
			return err
		}
		if err != nil {
			fmt.Printf("  (partial: %v)\n", err)
		}
		for _, r := range res {
			p := s.ds.Point(r.ID)
			fmt.Printf("  #%d at (%.3f, %.3f) dist %.4f\n", r.ID, p[0], p[1], r.Dist)
		}
		fmt.Printf("  (%d probes)\n", ns.Probes)
	case "ball":
		args, err := floats(fields[1:], 5)
		if err != nil {
			return err
		}
		sp := &kwsc.Sphere{Center: kwsc.Point{args[0], args[1]}, Radius: args[2]}
		ids, st, err := s.srp.Collect(sp, kws(args[3], args[4]), opts)
		report(ids, st.Ops, err)
	case "line":
		args, err := floats(fields[1:], 5)
		if err != nil {
			return err
		}
		hs := []kwsc.Halfspace{{Coef: []float64{args[0], args[1]}, Bound: args[2]}}
		var ids []int32
		st, err := s.lc.QueryConstraints(hs, kws(args[3], args[4]), opts,
			func(id int32) { ids = append(ids, id) })
		report(ids, st.Ops, err)
	case "isect":
		args, err := floats(fields[1:], 2)
		if err != nil {
			return err
		}
		ids, st, err := s.ksi.Report(kws(args[0], args[1]), opts)
		report(ids, st.Ops, err)
	case "insert":
		if s.dur == nil {
			return errDurableOff
		}
		args, err := floats(fields[1:], 4)
		if err != nil {
			return err
		}
		h, err := s.dur.Insert(kwsc.Object{
			Point: kwsc.Point{args[0], args[1]}, Doc: kws(args[2], args[3]),
		})
		if err != nil {
			return err
		}
		fmt.Printf("  inserted as handle %d (durable; %d live)\n", h, s.dur.Len())
	case "del":
		if s.dur == nil {
			return errDurableOff
		}
		args, err := floats(fields[1:], 1)
		if err != nil {
			return err
		}
		ok, err := s.dur.Delete(int64(args[0]))
		if err != nil {
			return err
		}
		if !ok {
			fmt.Printf("  handle %d is not live; nothing logged\n", int64(args[0]))
		} else {
			fmt.Printf("  deleted (durable; %d live)\n", s.dur.Len())
		}
	case "drange":
		if s.dur == nil {
			return errDurableOff
		}
		args, err := floats(fields[1:], 6)
		if err != nil {
			return err
		}
		q := &kwsc.Rect{Lo: []float64{args[0], args[2]}, Hi: []float64{args[1], args[3]}}
		handles, st, err := s.dur.Collect(q, kws(args[4], args[5]))
		if err != nil {
			return err
		}
		fmt.Printf("  %d results (%d work units)", len(handles), st.Ops)
		if len(handles) > 0 {
			fmt.Printf("; handles: %v", handles)
		}
		fmt.Println()
	case "checkpoint":
		if s.dur == nil {
			return errDurableOff
		}
		if err := s.dur.Checkpoint(); err != nil {
			return err
		}
		fmt.Printf("  checkpoint written at op %d; log truncated\n", s.dur.LastSeq())
	case "snapshot":
		if s.dur == nil {
			return errDurableOff
		}
		if len(fields) == 1 {
			s.snap = s.dur.Snapshot()
			fmt.Printf("  pinned snapshot at op %d (%d live); 'snapshot x1 x2 y1 y2 w1 w2' queries it\n",
				s.snap.Seq(), s.snap.Len())
			return nil
		}
		if s.snap == nil {
			return errors.New("no snapshot pinned; run 'snapshot' with no arguments first")
		}
		args, err := floats(fields[1:], 6)
		if err != nil {
			return err
		}
		q := &kwsc.Rect{Lo: []float64{args[0], args[2]}, Hi: []float64{args[1], args[3]}}
		handles, st, err := s.snap.Collect(q, kws(args[4], args[5]))
		if err != nil {
			return err
		}
		behind := s.dur.LastSeq() - s.snap.Seq()
		fmt.Printf("  %d results at pinned op %d (%d work units; %d ops behind head)",
			len(handles), s.snap.Seq(), st.Ops, behind)
		if len(handles) > 0 {
			fmt.Printf("; handles: %v", handles)
		}
		fmt.Println()
	default:
		return fmt.Errorf("unknown command %q; type 'help'", fields[0])
	}
	return nil
}

// printSessionMetrics summarizes the registry's per-family query counters
// for the stats command; the metrics command prints the full registry.
func printSessionMetrics() {
	snap := kwsc.Metrics()
	total := int64(0)
	var lines []string
	for name, v := range snap.Counters {
		if v == 0 || !strings.HasPrefix(name, "kwsc_queries_total{") {
			continue
		}
		total += v
		lines = append(lines, fmt.Sprintf("  %s = %d", name, v))
	}
	sort.Strings(lines)
	fmt.Printf("queries this session: %d ('metrics' dumps the full registry)\n", total)
	for _, l := range lines {
		fmt.Println(l)
	}
}

// printPagerStats reports the out-of-core serving layer: open/mapped files,
// buffer-pool residency and hit rate, checksum failures, and the retirement
// protocol counters. All zeros means every index is serving from RAM.
func printPagerStats() {
	snap := kwsc.Metrics()
	hits := snap.Counters["kwsc_pager_pin_hits_total"]
	misses := snap.Counters["kwsc_pager_pin_misses_total"]
	fmt.Printf("pager: %d files open, %d bytes mapped\n",
		snap.Gauges["kwsc_pager_open_files"], snap.Gauges["kwsc_pager_mapped_bytes"])
	fmt.Printf("buffer pool: %d pages resident, %d evictions\n",
		snap.Gauges["kwsc_pager_resident_pages"], snap.Counters["kwsc_pager_evictions_total"])
	if hits+misses > 0 {
		fmt.Printf("pins: %d hits, %d misses (%.1f%% hit rate)\n",
			hits, misses, 100*float64(hits)/float64(hits+misses))
	} else {
		fmt.Println("pins: none (mapped files read zero-copy, without pinning)")
	}
	fmt.Printf("integrity: %d checksum failures\n", snap.Counters["kwsc_pager_crc_failures_total"])
	fmt.Printf("retired files: %d deferred, %d deleted\n",
		snap.Counters["kwsc_pager_retire_deferred_total"], snap.Counters["kwsc_pager_retired_deleted_total"])
}

var errDurableOff = errors.New("durable index not open; start with -durable <dir>")

func kws(a, b float64) []kwsc.Keyword {
	return []kwsc.Keyword{kwsc.Keyword(a), kwsc.Keyword(b)}
}

func floats(fields []string, want int) ([]float64, error) {
	if len(fields) != want {
		return nil, fmt.Errorf("expected %d arguments, got %d", want, len(fields))
	}
	out := make([]float64, want)
	for i, f := range fields {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q", f)
		}
		out[i] = v
	}
	return out, nil
}

// report prints results, marking policy-truncated answers as partial rather
// than treating the typed stop as a hard failure.
func report(ids []int32, ops int64, err error) {
	switch {
	case errors.Is(err, kwsc.ErrBudget) || errors.Is(err, kwsc.ErrDeadline):
		fmt.Printf("  %d partial results (%d work units; stopped: %v)\n", len(ids), ops, err)
		return
	case err != nil:
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("  %d results (%d work units)", len(ids), ops)
	if len(ids) > 0 {
		fmt.Printf("; first ids: ")
		for i, id := range ids {
			if i == 8 {
				fmt.Print("...")
				break
			}
			fmt.Printf("%d ", id)
		}
	}
	fmt.Println()
}

// fatal aborts on startup (build) failures only; the interactive loop never
// calls it.
func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "kwsearch:", err)
		os.Exit(1)
	}
}
