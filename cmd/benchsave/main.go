// Command benchsave converts `go test -bench -benchmem` output on stdin into
// a JSON snapshot, one record per benchmark, so perf baselines can be
// committed and diffed across changes (see `make bench-save`). With -compare
// it instead checks fresh results against a committed baseline and exits
// non-zero on regression (see `make bench-compare`).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"kwsc/internal/benchfmt"
)

// The snapshot schema lives in internal/benchfmt, shared with cmd/kwsload
// (which contributes the serving-goodput section of a baseline).
type (
	Record       = benchfmt.Record
	SnapshotFile = benchfmt.SnapshotFile
)

// metricsPrefix marks the registry snapshot line in benchmark output.
const metricsPrefix = "# kwsc-metrics: "

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	compare := flag.String("compare", "", "baseline JSON to compare stdin results against (exits 1 on regression)")
	tolerance := flag.Float64("tolerance", 2.0, "with -compare: max allowed ns/op ratio vs baseline")
	flag.Parse()

	var snap SnapshotFile
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, metricsPrefix) {
			snap.Metrics = json.RawMessage(strings.TrimPrefix(line, metricsPrefix))
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		if r, ok := parseLine(line); ok {
			snap.Records = append(snap.Records, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchsave: reading stdin: %v\n", err)
		os.Exit(1)
	}
	if len(snap.Records) == 0 {
		fmt.Fprintln(os.Stderr, "benchsave: no benchmark lines on stdin")
		os.Exit(1)
	}
	snap.Records = mergeMin(snap.Records)

	if *compare != "" {
		os.Exit(compareBaseline(snap.Records, *compare, *tolerance))
	}

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchsave: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchsave: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchsave: wrote %d records to %s\n", len(snap.Records), *out)
}

// compareBaseline checks fresh records against the committed baseline:
// ns/op may drift up to the tolerance ratio — even the min-of-count
// measurement swings past 1.8x on identical binaries for microsecond-scale
// and fsync-bound benchmarks on shared hardware, so the default tolerance
// is a coarse catastrophic-regression tripwire, not a precision gate — but
// allocs/op is exact up to 0.1% of the baseline count — the zero-allocation
// query paths are a structural property and any new allocation there is a
// regression, not noise, while bulk benchmarks (recovery replay at ~200k
// allocs/op) legitimately jitter by a handful of map-growth allocations.
// Benchmarks present on only one side are reported but not fatal (families
// evolve).
func compareBaseline(recs []Record, path string, tolerance float64) int {
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchsave: reading baseline: %v\n", err)
		return 1
	}
	base, err := parseBaseline(raw)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchsave: parsing baseline %s: %v\n", path, err)
		return 1
	}
	byName := make(map[string]Record, len(base))
	for _, b := range base {
		byName[b.Name] = b
	}
	failures := 0
	matched := 0
	for _, r := range recs {
		b, ok := byName[r.Name]
		if !ok {
			fmt.Printf("  new   %-50s %12.0f ns/op (no baseline)\n", r.Name, r.NsPerOp)
			continue
		}
		matched++
		delete(byName, r.Name)
		status := "ok"
		if b.NsPerOp > 0 && r.NsPerOp > b.NsPerOp*tolerance {
			status = "SLOWER"
			failures++
		}
		if r.AllocsPerOp > b.AllocsPerOp+b.AllocsPerOp/1000 {
			status = "ALLOCS"
			failures++
		}
		fmt.Printf("  %-6s%-50s %12.0f ns/op (base %.0f, %.2fx)  %d allocs (base %d)\n",
			status, r.Name, r.NsPerOp, b.NsPerOp, ratio(r.NsPerOp, b.NsPerOp),
			r.AllocsPerOp, b.AllocsPerOp)
	}
	for name := range byName {
		fmt.Printf("  gone  %s (in baseline, not measured)\n", name)
	}
	if matched == 0 {
		fmt.Fprintln(os.Stderr, "benchsave: no benchmark matched the baseline")
		return 1
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "benchsave: %d regression(s) vs %s (tolerance %.2fx)\n",
			failures, path, tolerance)
		return 1
	}
	fmt.Fprintf(os.Stderr, "benchsave: %d benchmarks within %.2fx of %s\n", matched, tolerance, path)
	return 0
}

// mergeMin collapses repeated measurements of the same benchmark (go test
// -count=N) into one record holding the minimum of each metric. The minimum
// is the noise-robust statistic: scheduler preemption and cache pollution
// only ever add time (or allocations), so the smallest observation is the
// closest to the code's true cost.
func mergeMin(recs []Record) []Record {
	idx := make(map[string]int, len(recs))
	out := recs[:0]
	for _, r := range recs {
		i, seen := idx[r.Name]
		if !seen {
			idx[r.Name] = len(out)
			out = append(out, r)
			continue
		}
		if r.NsPerOp < out[i].NsPerOp {
			out[i].NsPerOp = r.NsPerOp
		}
		if r.BytesPerOp < out[i].BytesPerOp {
			out[i].BytesPerOp = r.BytesPerOp
		}
		if r.AllocsPerOp < out[i].AllocsPerOp {
			out[i].AllocsPerOp = r.AllocsPerOp
		}
		if r.BytesResident < out[i].BytesResident {
			out[i].BytesResident = r.BytesResident
		}
	}
	return out
}

// parseBaseline accepts both schema generations: the current
// {records, metrics} object and the legacy bare record array.
func parseBaseline(raw []byte) ([]Record, error) {
	var snap SnapshotFile
	if err := json.Unmarshal(raw, &snap); err == nil && len(snap.Records) > 0 {
		return snap.Records, nil
	}
	var recs []Record
	if err := json.Unmarshal(raw, &recs); err != nil {
		return nil, err
	}
	return recs, nil
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// parseLine decodes one result line, e.g.
//
//	BenchmarkFoo/N=4096-8   500   7298 ns/op   507 B/op   6 allocs/op
func parseLine(line string) (Record, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Record{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Record{}, false
	}
	r := Record{Name: fields[0], Iterations: iters}
	seenNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Record{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
			seenNs = true
		case "B/op":
			r.BytesPerOp = int64(v)
		case "allocs/op":
			r.AllocsPerOp = int64(v)
		case "bytes-resident":
			r.BytesResident = int64(v)
		}
	}
	return r, seenNs
}
