// Command benchsave converts `go test -bench -benchmem` output on stdin into
// a JSON snapshot, one record per benchmark, so perf baselines can be
// committed and diffed across changes (see `make bench-save`).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Record is one benchmark measurement.
type Record struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	var recs []Record
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		if r, ok := parseLine(line); ok {
			recs = append(recs, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchsave: reading stdin: %v\n", err)
		os.Exit(1)
	}
	if len(recs) == 0 {
		fmt.Fprintln(os.Stderr, "benchsave: no benchmark lines on stdin")
		os.Exit(1)
	}

	data, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchsave: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchsave: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchsave: wrote %d records to %s\n", len(recs), *out)
}

// parseLine decodes one result line, e.g.
//
//	BenchmarkFoo/N=4096-8   500   7298 ns/op   507 B/op   6 allocs/op
func parseLine(line string) (Record, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Record{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Record{}, false
	}
	r := Record{Name: fields[0], Iterations: iters}
	seenNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Record{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
			seenNs = true
		case "B/op":
			r.BytesPerOp = int64(v)
		case "allocs/op":
			r.AllocsPerOp = int64(v)
		}
	}
	return r, seenNs
}
