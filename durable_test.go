package kwsc_test

import (
	"errors"
	"sort"
	"testing"

	"kwsc"
)

func TestOpenDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d, err := kwsc.OpenDurable(dir, 2, 2,
		kwsc.WithFsyncPolicy(kwsc.FsyncNone),
		kwsc.WithAutoCheckpoint(8),
		kwsc.WithDurableBufferCap(4),
		kwsc.WithDurableBuild(kwsc.WithParallelism(1)))
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	objs := []kwsc.Object{
		{Point: kwsc.Point{0.1, 0.2}, Doc: []kwsc.Keyword{1, 2}},
		{Point: kwsc.Point{0.5, 0.6}, Doc: []kwsc.Keyword{1, 2, 3}},
		{Point: kwsc.Point{0.9, 0.9}, Doc: []kwsc.Keyword{2, 3}},
		{Point: kwsc.Point{0.3, 0.8}, Doc: []kwsc.Keyword{1, 2}},
	}
	var handles []int64
	for _, o := range objs {
		h, err := d.Insert(o)
		if err != nil {
			t.Fatalf("Insert: %v", err)
		}
		handles = append(handles, h)
	}
	if ok, err := d.Delete(handles[3]); err != nil || !ok {
		t.Fatalf("Delete: %v %v", ok, err)
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := d.Insert(objs[0]); !errors.Is(err, kwsc.ErrIndexClosed) {
		t.Fatalf("Insert after Close: %v, want ErrIndexClosed", err)
	}

	d2, err := kwsc.OpenDurable(dir, 2, 2)
	if err != nil {
		t.Fatalf("recovery OpenDurable: %v", err)
	}
	defer d2.Close()
	if d2.Len() != 3 {
		t.Fatalf("recovered Len = %d, want 3", d2.Len())
	}
	got, _, err := d2.Collect(kwsc.NewRect([]float64{0, 0}, []float64{1, 1}), []kwsc.Keyword{1, 2})
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	want := []int64{handles[0], handles[1]} // handle 3 deleted, handle 2 lacks keyword 1
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("recovered query = %v, want %v", got, want)
	}
	// Dimension mismatch must be refused, not silently re-indexed.
	if _, err := kwsc.OpenDurable(dir, 3, 2); err == nil {
		t.Fatal("OpenDurable accepted a dim mismatch")
	}
}

// TestDurableSnapshotPinned pins a snapshot through the facade and requires
// it to answer identically after interleaved mutations moved the head on.
func TestDurableSnapshotPinned(t *testing.T) {
	dir := t.TempDir()
	d, err := kwsc.OpenDurable(dir, 2, 2,
		kwsc.WithFsyncPolicy(kwsc.FsyncNone), kwsc.WithDurableBufferCap(4))
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	defer d.Close()
	for i := 0; i < 12; i++ {
		if _, err := d.Insert(kwsc.Object{
			Point: kwsc.Point{float64(i) / 12, 0.5},
			Doc:   []kwsc.Keyword{1, kwsc.Keyword(2 + i%3)},
		}); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	var s *kwsc.DynSnapshot = d.Snapshot()
	if s.Seq() != d.LastSeq() {
		t.Fatalf("snapshot seq %d, head %d", s.Seq(), d.LastSeq())
	}
	all := kwsc.NewRect([]float64{0, 0}, []float64{1, 1})
	ws := []kwsc.Keyword{1, 2}
	before, _, err := s.Collect(all, ws)
	if err != nil {
		t.Fatalf("snapshot Collect: %v", err)
	}
	sort.Slice(before, func(i, j int) bool { return before[i] < before[j] })

	// Mutate past the pin: delete every object the pinned query reported and
	// insert replacements, forcing carries through the pinned buckets.
	for _, h := range before {
		if ok, err := d.Delete(h); err != nil || !ok {
			t.Fatalf("Delete(%d): %v %v", h, ok, err)
		}
	}
	for i := 0; i < 20; i++ {
		if _, err := d.Insert(kwsc.Object{
			Point: kwsc.Point{0.5, float64(i) / 20},
			Doc:   []kwsc.Keyword{1, 2},
		}); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}

	after, _, err := s.Collect(all, ws)
	if err != nil {
		t.Fatalf("pinned Collect after churn: %v", err)
	}
	sort.Slice(after, func(i, j int) bool { return after[i] < after[j] })
	if len(before) == 0 || len(before) != len(after) {
		t.Fatalf("pinned view changed size: %v then %v", before, after)
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("pinned view changed: %v then %v", before, after)
		}
	}
	// The live index, by contrast, sees the churn.
	liveNow, _, err := d.Collect(all, ws)
	if err != nil {
		t.Fatalf("live Collect: %v", err)
	}
	if len(liveNow) == len(before) {
		t.Fatalf("churn did not change the live answer (%d handles)", len(liveNow))
	}
	if d.LastSeq() <= s.Seq() {
		t.Fatalf("head seq %d did not advance past pin %d", d.LastSeq(), s.Seq())
	}
}
